"""Site selection: ranked list, category dataset, §3.2 filter."""

import pytest

from repro.websim.tranco import (
    CATEGORY_SHOPPING,
    CategoryDataset,
    build_tranco_universe,
    select_study_sites,
)


@pytest.fixture(scope="module")
def universe():
    shopping = ["shop%03d.example" % i for i in range(50)]
    return build_tranco_universe(shopping, total=1000, seed=5), shopping


def test_universe_size_and_ranks(universe):
    (ranked, _), _ = universe
    assert len(ranked) == 1000
    assert [site.rank for site in ranked] == list(range(1, 1001))


def test_all_shopping_domains_embedded(universe):
    (ranked, dataset), shopping = universe
    embedded = {site.domain for site in ranked
                if site.category == CATEGORY_SHOPPING}
    assert embedded == set(shopping)
    for domain in shopping:
        assert dataset.classify(domain) == CATEGORY_SHOPPING


def test_selection_recovers_study_sites(universe):
    (ranked, dataset), shopping = universe
    selected = select_study_sites(ranked, dataset, max_rank=1000)
    assert sorted(selected) == sorted(shopping)


def test_rank_cutoff_respected(universe):
    (ranked, dataset), _ = universe
    top_half = select_study_sites(ranked, dataset, max_rank=500)
    full = select_study_sites(ranked, dataset, max_rank=1000)
    assert set(top_half) <= set(full)
    assert len(top_half) < len(full)


def test_no_shopping_sites_in_global_top_ranks(universe):
    # Like real Tranco: the very top of the list is not shop sites.
    (ranked, _), _ = universe
    assert all(site.category != CATEGORY_SHOPPING
               for site in ranked[:40])


def test_deterministic(universe):
    _, shopping = universe
    ranked_a, _ = build_tranco_universe(shopping, total=1000, seed=5)
    ranked_b, _ = build_tranco_universe(shopping, total=1000, seed=5)
    assert ranked_a == ranked_b


def test_total_must_exceed_shopping_count():
    with pytest.raises(ValueError):
        build_tranco_universe(["a.example"] * 10, total=10)


def test_category_dataset_queries():
    dataset = CategoryDataset({"a.com": "news-and-media",
                               "b.com": "shopping"})
    assert dataset.classify("A.COM") == "news-and-media"
    assert dataset.classify("missing.com") is None
    assert dataset.count("shopping") == 1
    assert dataset.domains("shopping") == ["b.com"]
    assert len(dataset) == 2


def test_calibrated_spec_carries_acquisition_context(study_spec):
    assert len(study_spec.tranco) == 10_000
    selected = select_study_sites(study_spec.tranco, study_spec.categories)
    assert sorted(selected) == sorted(study_spec.population.sites)
    # §3.2: 95.0% of the selected shopping sites have authentication flows.
    with_auth = sum(
        1 for domain in selected
        if study_spec.population.sites[domain].auth.has_auth)
    assert abs(100.0 * with_auth / len(selected) - 95.0) < 1.0
    # Site objects carry their actual rank in the universe.
    ranks = {study_spec.population.sites[d].tranco_rank for d in selected}
    assert len(ranks) == 404 and max(ranks) <= 10_000
