"""Per-shard resource accounting: invariance + reconciliation.

The two contracts (mirroring ``tests/test_obs_progress.py``):

* **Invariance** — resource telemetry rides the heartbeat channel and
  stays entirely outside the deterministic domain: a crawl with it on
  is bit-identical (fingerprint AND merged trace) to one with it off,
  across seeds and worker counts.
* **Reconciliation** — the sample in a shard's final heartbeat is the
  *same* sample the engine returns in ``ShardResult.resources`` and
  the supervisor writes into the study manifest: one measurement,
  three surfaces.
"""

import json
import os

import pytest

from repro.core import Study, StudyConfig
from repro.crawler import (
    GeneratedPopulationSpec,
    MANIFEST_NAME,
    ParallelCrawler,
    load_manifest,
)
from repro.obs import ProgressAggregator, read_progress_log
from repro.obs.progress import HeartbeatEvent, final_heartbeat, step_heartbeat
from repro.obs.runtime import aggregate_resources
from repro.websim.generator import GeneratorConfig

_CONFIG = GeneratorConfig(n_sites=10, n_trackers=4, leak_probability=0.6,
                          confirmation_probability=0.4)
_NUM_SHARDS = 5
_RESOURCE_KEYS = {"cpu_user_seconds", "cpu_system_seconds", "max_rss_kb",
                  "gc_collections", "gc_collected"}


def _study(seed, workers, resources=False, progress=None, trace=False):
    spec = GeneratedPopulationSpec(seed=seed, config=_CONFIG)
    config = StudyConfig(workers=workers, num_shards=_NUM_SHARDS,
                         progress=progress, resources=resources)
    if trace:
        config = config.with_observability()
    return Study(spec.build(), config=config, population_spec=spec)


def _engine(workers, **kwargs):
    spec = GeneratedPopulationSpec(seed=0, config=_CONFIG)
    return ParallelCrawler(spec, workers=workers, num_shards=_NUM_SHARDS,
                           **kwargs)


# -- invariance: telemetry on == telemetry off ----------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("seed", [0, 1])
def test_resources_never_change_the_fingerprint(seed, workers):
    baseline = _study(seed, workers).crawl().dataset.fingerprint()
    sink = ProgressAggregator()
    watched = _study(seed, workers, resources=True, progress=sink)
    assert watched.crawl().dataset.fingerprint() == baseline
    # The telemetry actually ran — this is not a vacuous comparison.
    assert sink.resource_usage()


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_resources_never_change_the_merged_trace(workers):
    plain = _study(0, workers, trace=True).crawl()
    sampled = _study(0, workers, resources=True,
                     progress=ProgressAggregator(), trace=True).crawl()
    assert sampled.recorder.snapshot() == plain.recorder.snapshot()
    assert sampled.dataset.fingerprint() == plain.dataset.fingerprint()


def test_heartbeats_are_byte_identical_when_telemetry_is_off():
    """No ``resources`` key at all when sampling is off — logs and
    dashboards see the exact pre-telemetry schema."""
    event = step_heartbeat(shard=0, crawled=1, total=2, domain="a.example",
                           status="success", attempts=1, requests=3,
                           retried=0, quarantined=0)
    assert "resources" not in event.as_dict()
    closing = final_heartbeat(shard=0, crawled=2, total=2, retried=0,
                              quarantined=0)
    assert "resources" not in closing.as_dict()


def test_heartbeat_resources_serialize_sorted():
    event = HeartbeatEvent(shard=0, crawled=1, total=1,
                           resources={"b_key": 2.0, "a_key": 1.0})
    assert list(event.as_dict()["resources"]) == ["a_key", "b_key"]


# -- the engine surface ---------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_every_shard_result_carries_a_sample(workers):
    result = _engine(workers, resources=True).run()
    assert result.complete
    assert sorted(result.resources) == list(range(_NUM_SHARDS))
    for sample in result.resources.values():
        assert set(sample) == _RESOURCE_KEYS
        assert sample["max_rss_kb"] > 0
        assert sample["cpu_user_seconds"] >= 0


def test_engine_without_the_flag_samples_nothing():
    result = _engine(2).run()
    assert result.complete
    assert result.resources == {}


# -- reconciliation: heartbeat == ShardResult == manifest -----------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_final_heartbeat_sample_is_the_shard_result_sample(workers):
    sink = ProgressAggregator()
    result = _engine(workers, resources=True, progress=sink).run()
    usage = sink.resource_usage()
    assert usage["shards"] == {str(index): sample
                               for index, sample in result.resources.items()}
    assert usage["totals"] == aggregate_resources(result.resources.values())


def test_manifest_reconciles_with_the_shard_results(tmp_path):
    result = _engine(2, resources=True,
                     checkpoint_dir=str(tmp_path)).run()
    assert result.complete
    manifest = load_manifest(str(tmp_path))
    assert manifest["resources"]["shards"] == {
        str(index): sample for index, sample in result.resources.items()}
    assert manifest["resources"]["totals"] == aggregate_resources(
        result.resources.values())
    # The manifest is plain sorted JSON on disk, not just in memory.
    raw = json.loads(open(os.path.join(str(tmp_path),
                                       MANIFEST_NAME)).read())
    assert raw["resources"] == manifest["resources"]


def test_manifest_without_telemetry_has_no_resources_section(tmp_path):
    assert _engine(2, checkpoint_dir=str(tmp_path)).run().complete
    assert "resources" not in load_manifest(str(tmp_path))


# -- the progress log and snapshot ----------------------------------------


def test_progress_jsonl_carries_per_shard_samples(tmp_path):
    path = str(tmp_path / "progress.jsonl")
    with ProgressAggregator(jsonl_path=path) as sink:
        _study(0, 2, resources=True, progress=sink).crawl()
    events = read_progress_log(path)
    finals = [event for event in events if event["final"]]
    assert len(finals) == _NUM_SHARDS
    for event in finals:
        assert set(event["resources"]) == _RESOURCE_KEYS
    # Step heartbeats sample too (live dashboards see usage mid-shard).
    steps = [event for event in events if not event["final"]]
    assert steps and all("resources" in event for event in steps)


def test_snapshot_includes_resources_only_when_sampled():
    plain = ProgressAggregator()
    _study(0, 2, progress=plain).crawl()
    assert "resources" not in plain.snapshot()
    assert plain.resource_usage() == {}

    sampled = ProgressAggregator()
    _study(0, 2, resources=True, progress=sampled).crawl()
    snapshot = sampled.snapshot()
    assert sorted(snapshot["resources"]["shards"]) == [
        str(index) for index in range(_NUM_SHARDS)]
    totals = snapshot["resources"]["totals"]
    assert totals["max_rss_kb"] >= max(
        sample["max_rss_kb"]
        for sample in snapshot["resources"]["shards"].values())


def test_serial_study_samples_through_the_emit_path():
    """A workers=1 study crawls serially (one logical shard); the
    sampler still rides its heartbeats and surfaces in the snapshot."""
    sink = ProgressAggregator()
    _study(0, 1, resources=True, progress=sink).crawl()
    usage = sink.resource_usage()
    assert sorted(usage["shards"]) == ["0"]
    assert set(usage["shards"]["0"]) == _RESOURCE_KEYS
    assert usage["totals"]["max_rss_kb"] \
        == usage["shards"]["0"]["max_rss_kb"]


def test_in_process_shards_get_per_shard_deltas():
    """workers=1 on the *engine* runs every shard in one process; the
    per-shard sampler rebaselines, so CPU deltas sum instead of each
    shard re-reporting the process's cumulative counters."""
    result = _engine(1, resources=True).run()
    totals = aggregate_resources(result.resources.values())
    assert totals["cpu_user_seconds"] == pytest.approx(sum(
        sample["cpu_user_seconds"]
        for sample in result.resources.values()), abs=1e-6)
    # Cumulative counters would make every shard's reading ~equal to
    # the process total; deltas keep the sum near one process's usage.
    import resource as resource_module
    process_total = resource_module.getrusage(
        resource_module.RUSAGE_SELF).ru_utime
    assert totals["cpu_user_seconds"] <= process_total + 1e-6
