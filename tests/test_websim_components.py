"""Site model, tracker catalog and script engine."""

import pytest

from repro import hashes
from repro.core.leakmodel import (
    CHANNEL_COOKIE,
    CHANNEL_PAYLOAD,
    CHANNEL_URI,
)
from repro.netsim import Url, decode_json, decode_urlencoded
from repro.websim import (
    LeakBehavior,
    SiteAuthConfig,
    TrackerEmbed,
    Website,
    build_default_catalog,
    signin_form,
    signup_form,
)
from repro.websim.scripts import (
    EmitRequest,
    ScriptContext,
    SetFirstPartyCookie,
    StoreTrackerState,
    baseline_actions,
    exfil_actions,
    revisit_actions,
)
from repro.websim.trackers import (
    BRAVE_MISSED_DOMAINS,
    TABLE2_SERVICES,
    TrackerCatalog,
)

EMAIL = "foo@mydom.com"


@pytest.fixture(scope="module")
def catalog():
    return build_default_catalog()


def _site(embed):
    return Website(domain="shop.example", embeds=[embed])


def _ctx(site, pii=None, stored=None, stage="signup"):
    return ScriptContext(site=site,
                         page_url=Url.parse("https://www.shop.example/"),
                         stage=stage, pii=pii or {},
                         stored_state=stored or {})


# -- catalog ---------------------------------------------------------------

def test_catalog_contains_all_table2_providers(catalog):
    for service in TABLE2_SERVICES:
        assert catalog.has(service.domain)
        assert catalog.get(service.domain).persistent


def test_catalog_attribution_by_endpoint_host(catalog):
    service = catalog.attribute_host("www.facebook.com")
    assert service is not None and service.domain == "facebook.com"
    # Script CDN hosts attribute to the owning service too.
    service = catalog.attribute_host("connect.facebook.net")
    assert service.domain == "facebook.com"


def test_catalog_attribution_unknown_host(catalog):
    assert catalog.attribute_host("www.nobody.example") is None


def test_catalog_rejects_duplicates(catalog):
    with pytest.raises(ValueError):
        catalog.add(catalog.get("facebook.com"))


def test_brave_missed_domains_in_catalog(catalog):
    for domain in BRAVE_MISSED_DOMAINS:
        assert catalog.has(domain)


def test_omtrdc_is_cloaked(catalog):
    assert catalog.get("omtrdc.net").is_cloaked


# -- site model -----------------------------------------------------------------

def test_leak_behavior_validation():
    with pytest.raises(ValueError):
        LeakBehavior(channels=(), chains=((),))
    with pytest.raises(ValueError):
        LeakBehavior(channels=(CHANNEL_URI,), chains=())
    with pytest.raises(ValueError):
        LeakBehavior(channels=(CHANNEL_URI,), chains=((),), pii_fields=())


def test_website_receiver_domains(catalog):
    embeds = [
        TrackerEmbed(catalog.get("facebook.com"),
                     LeakBehavior((CHANNEL_URI,), (("sha256",),))),
        TrackerEmbed(catalog.get("criteo.com")),
    ]
    site = Website(domain="shop.example", embeds=embeds)
    assert site.receiver_domains() == ["facebook.com"]
    assert len(site.leaking_embeds()) == 1


def test_is_crawlable_flags():
    assert Website(domain="a.example").is_crawlable
    assert not Website(domain="b.example",
                       auth=SiteAuthConfig(unreachable=True)).is_crawlable
    assert not Website(domain="c.example",
                       auth=SiteAuthConfig(has_auth=False)).is_crawlable
    assert not Website(
        domain="d.example",
        auth=SiteAuthConfig(signup_block="phone_verification")).is_crawlable


def test_signup_form_custom_fields():
    site = Website(domain="s.example",
                   auth=SiteAuthConfig(signup_method="GET",
                                       signup_fields=("email", "password")))
    form = signup_form(site)
    names = [field.name for field in form.fields]
    assert names[:2] == ["email", "password"]
    assert form.method == "GET"


def test_signin_form_shape():
    form = signin_form(Website(domain="s.example"))
    assert form.method == "POST"
    assert [f.name for f in form.fields][:2] == ["email", "password"]


# -- script engine -----------------------------------------------------------------

def test_baseline_action_is_pageview_ping(catalog):
    embed = TrackerEmbed(catalog.get("facebook.com"))
    actions = baseline_actions(embed, _ctx(_site(embed)))
    assert len(actions) == 1
    request = actions[0]
    assert isinstance(request, EmitRequest)
    assert request.url.query_get("ev") == "PageView"
    # Document location param must not smuggle the page query string.
    assert "?" not in (request.url.query_get("dl") or "")


def test_exfil_uri_channel(catalog):
    behavior = LeakBehavior((CHANNEL_URI,), (("sha256",),))
    embed = TrackerEmbed(catalog.get("facebook.com"), behavior)
    actions = exfil_actions(embed, _ctx(_site(embed), pii={"email": EMAIL}))
    emits = [a for a in actions if isinstance(a, EmitRequest)]
    assert len(emits) == 1
    token = hashes.apply_chain(EMAIL, ["sha256"])
    assert emits[0].url.query_get("udff[em]") == token
    # Persistent service stores the identifier for subpage re-emission.
    stores = [a for a in actions if isinstance(a, StoreTrackerState)]
    assert len(stores) == 1


def test_exfil_normalizes_email_case(catalog):
    behavior = LeakBehavior((CHANNEL_URI,), (("sha256",),))
    embed = TrackerEmbed(catalog.get("facebook.com"), behavior)
    actions = exfil_actions(embed, _ctx(_site(embed),
                                        pii={"email": EMAIL.upper()}))
    emits = [a for a in actions if isinstance(a, EmitRequest)]
    assert emits[0].url.query_get("udff[em]") == \
        hashes.apply_chain(EMAIL, ["sha256"])


def test_exfil_payload_json(catalog):
    behavior = LeakBehavior((CHANNEL_PAYLOAD,), ((),),
                            payload_format="json")
    embed = TrackerEmbed(catalog.get("bluecore.com"), behavior)
    actions = exfil_actions(embed, _ctx(_site(embed), pii={"email": EMAIL}))
    emits = [a for a in actions if isinstance(a, EmitRequest)]
    assert emits[0].method == "POST"
    payload = decode_json(emits[0].body)
    assert payload["properties"]["data"] == EMAIL


def test_exfil_payload_urlencoded(catalog):
    behavior = LeakBehavior((CHANNEL_PAYLOAD,), (("md5",),))
    embed = TrackerEmbed(catalog.get("snapchat.com"), behavior)
    actions = exfil_actions(embed, _ctx(_site(embed), pii={"email": EMAIL}))
    emits = [a for a in actions if isinstance(a, EmitRequest)]
    fields = dict(decode_urlencoded(emits[0].body))
    assert fields["u_hem"] == hashes.apply_chain(EMAIL, ["md5"])


def test_exfil_cookie_channel_sets_first_party_cookie(catalog):
    behavior = LeakBehavior((CHANNEL_COOKIE,), (("sha256",),))
    embed = TrackerEmbed(catalog.get("omtrdc.net"), behavior)
    site = _site(embed)
    actions = exfil_actions(embed, _ctx(site, pii={"email": EMAIL}))
    cookies = [a for a in actions if isinstance(a, SetFirstPartyCookie)]
    assert len(cookies) == 1
    assert cookies[0].domain == site.domain
    assert cookies[0].value == hashes.apply_chain(EMAIL, ["sha256"])
    emits = [a for a in actions if isinstance(a, EmitRequest)]
    assert emits[0].url.host == "metrics.shop.example"


def test_exfil_combined_channels_emit_two_requests(catalog):
    behavior = LeakBehavior((CHANNEL_URI, CHANNEL_PAYLOAD), (("sha256",),))
    embed = TrackerEmbed(catalog.get("facebook.com"), behavior)
    actions = exfil_actions(embed, _ctx(_site(embed), pii={"email": EMAIL}))
    emits = [a for a in actions if isinstance(a, EmitRequest)]
    assert {e.method for e in emits} == {"GET", "POST"}


def test_exfil_combined_encodings_use_alternate_params(catalog):
    behavior = LeakBehavior((CHANNEL_URI,), (("md5",), ("sha256",)))
    embed = TrackerEmbed(catalog.get("criteo.com"), behavior)
    actions = exfil_actions(embed, _ctx(_site(embed), pii={"email": EMAIL}))
    emits = [a for a in actions if isinstance(a, EmitRequest)]
    query = dict(emits[0].url.query)
    assert query["p0"] == hashes.apply_chain(EMAIL, ["md5"])
    assert query["p1"] == hashes.apply_chain(EMAIL, ["sha256"])


def test_exfil_email_name_parameter_derivation(catalog):
    behavior = LeakBehavior((CHANNEL_URI,), (("sha256",),),
                            pii_fields=("email", "name"))
    embed = TrackerEmbed(catalog.get("facebook.com"), behavior)
    actions = exfil_actions(embed, _ctx(_site(embed),
                                        pii={"email": EMAIL,
                                             "name": "Alex Romero"}))
    emits = [a for a in actions if isinstance(a, EmitRequest)]
    query = dict(emits[0].url.query)
    assert "udff[em]" in query and "udff[fn]" in query


def test_exfil_without_pii_is_noop(catalog):
    behavior = LeakBehavior((CHANNEL_URI,), (("sha256",),))
    embed = TrackerEmbed(catalog.get("facebook.com"), behavior)
    assert exfil_actions(embed, _ctx(_site(embed))) == []


def test_revisit_requires_persistence_and_state(catalog):
    behavior = LeakBehavior((CHANNEL_URI,), (("sha256",),))
    embed = TrackerEmbed(catalog.get("facebook.com"), behavior)
    site = _site(embed)
    assert revisit_actions(embed, _ctx(site, stage="subpage")) == []
    stored = {"facebook.com": {"udff[em]": "token123"}}
    actions = revisit_actions(embed, _ctx(site, stored=stored,
                                          stage="subpage"))
    emits = [a for a in actions if isinstance(a, EmitRequest)]
    assert emits[0].url.query_get("udff[em]") == "token123"


def test_revisit_nonpersistent_service_silent():
    catalog = TrackerCatalog()
    from repro.websim.trackers import _filler_service
    service = _filler_service("adroll.com")
    catalog.add(service)
    embed = TrackerEmbed(service,
                         LeakBehavior((CHANNEL_URI,), (("sha256",),)))
    site = _site(embed)
    stored = {"adroll.com": {"uid": "tok"}}
    assert revisit_actions(embed, _ctx(site, stored=stored)) == []
