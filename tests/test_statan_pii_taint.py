"""PII-taint rule: sources, propagation, sanitizers, sinks."""

import textwrap

from repro.statan import analyze_source
from repro.statan.rules.pii_taint import PiiSinkRule


def _findings(source, module="repro.cli"):
    return analyze_source(textwrap.dedent(source), [PiiSinkRule()],
                          module=module)


def _fired(source, module="repro.cli"):
    return [finding.rule for finding in _findings(source, module)]


# -- direct source → sink ----------------------------------------------------

def test_persona_email_to_print_flagged():
    assert _fired("""
        def show(persona):
            print(persona.email)
    """) == ["PII201"]


def test_default_persona_attribute_flagged():
    assert _fired("""
        def show():
            print("email: %s" % DEFAULT_PERSONA.email)
    """) == ["PII201"]


def test_leak_payload_field_flagged():
    assert _fired("""
        def show(origin):
            print(origin.surface_form)
    """) == ["PII201"]


def test_non_pii_attribute_not_flagged():
    assert _fired("""
        def show(origin, persona):
            print(origin.pii_type)
            print(persona.site_count)
    """) == []


def test_email_on_non_persona_base_not_flagged():
    assert _fired("""
        def show(settings):
            print(settings.email)
    """) == []


# -- propagation -------------------------------------------------------------

def test_taint_flows_through_assignment_and_formatting():
    assert _fired("""
        def show(persona):
            value = persona.email
            line = "persona: %s" % value
            print(line)
    """) == ["PII201"]


def test_taint_flows_through_fstring():
    assert _fired("""
        def show(persona):
            print(f"who: {persona.email}")
    """) == ["PII201"]


def test_taint_flows_through_method_call():
    assert _fired("""
        def show(persona):
            lowered = persona.email.lower()
            print(lowered)
    """) == ["PII201"]


def test_reassignment_clears_taint():
    assert _fired("""
        def show(persona):
            value = persona.email
            value = "clean"
            print(value)
    """) == []


def test_branch_taint_merges():
    assert _fired("""
        def show(persona, raw):
            value = "clean"
            if raw:
                value = persona.email
            print(value)
    """) == ["PII201"]


def test_taint_into_raise_flagged():
    assert _fired("""
        def merge(persona):
            raise ValueError("mismatch for %s" % persona.email)
    """) == ["PII201"]


def test_logging_sink_flagged():
    assert _fired("""
        import logging
        def show(persona):
            logging.info("user %s", persona.email)
    """) == ["PII201"]


def test_file_write_sink_flagged():
    assert _fired("""
        def dump(persona, handle):
            handle.write(persona.email)
    """) == ["PII201"]


# -- sanitizers --------------------------------------------------------------

def test_redact_sanitizes():
    assert _fired("""
        from repro.reporting import redact_email
        def show(persona):
            print(redact_email(persona.email))
    """) == []


def test_redacted_assignment_stays_clean():
    assert _fired("""
        from repro.reporting import redact
        def show(persona):
            masked = redact(persona.email)
            print("persona: %s" % masked)
    """) == []


def test_digest_of_pii_still_tainted():
    # Hashing is how the trackers launder PII — a digest of the email
    # is still a stable identifier, so it is NOT a sanitizer.
    assert _fired("""
        import hashlib
        def show(persona):
            uid = hashlib.md5(persona.email.encode()).hexdigest()
            print(uid)
    """) == ["PII201"]


# -- scoping -----------------------------------------------------------------

def test_redact_module_is_exempt():
    assert _fired("""
        def redact_email(email):
            print(email[:1])
            return email[:1] + "***"
    """, module="repro.reporting.redact") == []


def test_fingerprint_fold_is_not_a_sink():
    # Folding the persona email into a hashlib digest (the fingerprint
    # idiom in crawler.runner) is computation, not output.
    assert _fired("""
        import hashlib
        def fingerprint(persona):
            digest = hashlib.sha256()
            digest.update(persona.email.encode())
            return digest.hexdigest()
    """) == []


def test_finding_names_source_and_sink():
    findings = _findings("""
        def show(persona):
            print(persona.email)
    """)
    assert len(findings) == 1
    message = findings[0].message
    assert "persona.email" in message and "print()" in message
    assert "redact" in message


# -- interprocedural (one call deep, via the project call graph) -------------

#: The sink lives inside the callee: intraprocedurally, show() only
#: makes a non-sink call and log_line() only prints an (untainted)
#: parameter — neither scope has a source-reaches-sink path on its own.
CALLEE_SINK_LEAK = """
    def log_line(text):
        print(text)

    def show(persona):
        log_line(persona.email)
"""

#: The source lives inside the callee: show() prints the result of a
#: call with no tainted argument, which the conservative
#: any-tainted-arg rule can never flag.
CALLEE_SOURCE_LEAK = """
    def fetch_email(persona):
        return persona.email

    def show(persona):
        print(fetch_email(persona))
"""


def _intraprocedural_fired(source, module="repro.cli"):
    """The old pass: the rule run without prepare(), so no call graph
    and no summaries — exactly PR 3's intraprocedural behaviour."""
    import textwrap as _tw

    from repro.statan.engine import ModuleContext
    rule = PiiSinkRule()
    ctx = ModuleContext("fixture.py", _tw.dedent(source), module=module)
    return [finding.rule for finding in rule.check(ctx)]


def test_callee_sink_leak_missed_intraprocedurally():
    assert _intraprocedural_fired(CALLEE_SINK_LEAK) == []


def test_callee_sink_leak_caught_interprocedurally():
    findings = _findings(CALLEE_SINK_LEAK)
    assert [finding.rule for finding in findings] == ["PII201"]
    # The finding points at the *call site* and names the inner sink.
    assert "inside log_line()" in findings[0].message


def test_callee_source_leak_missed_intraprocedurally():
    assert _intraprocedural_fired(CALLEE_SOURCE_LEAK) == []


def test_callee_source_leak_caught_interprocedurally():
    findings = _findings(CALLEE_SOURCE_LEAK)
    assert [finding.rule for finding in findings] == ["PII201"]
    assert "returned by fetch_email()" in findings[0].message


def test_redaction_through_helper_stays_clean():
    assert _fired("""
        from repro.reporting import redact_email

        def log_line(text):
            print(text)

        def show(persona):
            log_line(redact_email(persona.email))
    """) == []


def test_callee_own_leak_reported_at_definition_not_call_site():
    # When the callee leaks on its own (source AND sink both inside),
    # the finding belongs to the definition; a caller passing nothing
    # tainted must not produce a duplicate at the call site.
    findings = _findings("""
        def bad(persona):
            print(persona.email)

        def caller(persona):
            bad(persona)
    """)
    assert [finding.rule for finding in findings] == ["PII201"]
    assert findings[0].line == 3
