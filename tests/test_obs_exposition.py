"""Prometheus text exposition: escaping, cumulativity, golden scrape.

The golden test is the load-bearing one: rendering is name-sorted and
value formatting deterministic, so a busy fake registry must scrape to
*exactly* the text below, byte for byte.  If a rendering change is
intentional, update the golden block to match — consciously.
"""

import math

import pytest

from repro.obs.exposition import (
    CONTENT_TYPE,
    escape_help,
    escape_label_value,
    format_value,
    parse_exposition,
    render_histogram_standalone,
    render_prometheus,
    split_series,
)
from repro.obs.metrics import Histogram
from repro.obs.runtime import RuntimeMetrics

# -- escaping & value formatting ------------------------------------------


def test_help_escapes_backslash_and_newline():
    assert escape_help("a\\b\nc") == "a\\\\b\\nc"


def test_label_value_escapes_quote_too():
    assert escape_label_value('say "hi"\\now\n') == 'say \\"hi\\"\\\\now\\n'


def test_format_value_integral_floats_render_as_ints():
    assert format_value(3.0) == "3"
    assert format_value(0.0) == "0"
    assert format_value(-2.0) == "-2"


def test_format_value_fractions_and_specials():
    assert format_value(0.25) == "0.25"
    assert format_value(float("inf")) == "+Inf"
    assert format_value(float("-inf")) == "-Inf"
    assert format_value(float("nan")) == "NaN"


def test_content_type_is_the_prometheus_text_format():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


# -- structural properties ------------------------------------------------


def test_every_family_gets_a_type_line():
    metrics = RuntimeMetrics()
    metrics.inc("c_total")
    metrics.set_gauge("g", 1)
    metrics.observe("h_seconds", 0.1)
    text = render_prometheus(metrics)
    assert "# TYPE c_total counter" in text
    assert "# TYPE g gauge" in text
    assert "# TYPE h_seconds histogram" in text
    assert text.endswith("\n")


def test_empty_registry_renders_empty():
    assert render_prometheus(RuntimeMetrics()) == ""


def test_label_values_are_escaped_in_sample_lines():
    metrics = RuntimeMetrics()
    metrics.inc("odd", labels={"path": 'a"b\\c\nd'})
    text = render_prometheus(metrics)
    assert 'odd{path="a\\"b\\\\c\\nd"} 1' in text


def test_histogram_buckets_are_cumulative_and_end_in_inf():
    histogram = Histogram(name="lat_seconds", bounds=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    lines = render_histogram_standalone(histogram).splitlines()
    assert lines == [
        'lat_seconds_bucket{le="0.1"} 1',
        'lat_seconds_bucket{le="1"} 3',
        'lat_seconds_bucket{le="10"} 4',
        'lat_seconds_bucket{le="+Inf"} 5',
        "lat_seconds_sum 56.05",
        "lat_seconds_count 5",
    ]


def test_histogram_with_labels_keeps_them_on_every_line():
    histogram = Histogram(name="lat", bounds=(1.0,))
    histogram.observe(0.5)
    text = render_histogram_standalone(histogram, labels={"stage": "crawl"})
    assert 'lat_bucket{le="1",stage="crawl"} 1' in text
    assert 'lat_sum{stage="crawl"} 0.5' in text
    assert 'lat_count{stage="crawl"} 1' in text


# -- the golden scrape ----------------------------------------------------

_GOLDEN = """\
# HELP repro_http_requests_total HTTP requests served.
# TYPE repro_http_requests_total counter
repro_http_requests_total{method="GET",status="200"} 2
repro_http_requests_total{method="POST",status="404"} 1
# HELP repro_service_queue_depth Jobs queued.
# TYPE repro_service_queue_depth gauge
repro_service_queue_depth 3
# HELP repro_service_submit_seconds Submit latency.
# TYPE repro_service_submit_seconds histogram
repro_service_submit_seconds_bucket{le="0.005"} 1
repro_service_submit_seconds_bucket{le="0.05"} 2
repro_service_submit_seconds_bucket{le="+Inf"} 3
repro_service_submit_seconds_sum 1.53515625
repro_service_submit_seconds_count 3
"""


def _busy_registry():
    metrics = RuntimeMetrics()
    metrics.inc("repro_http_requests_total", help="HTTP requests served.",
                labels={"method": "GET", "status": "200"})
    metrics.inc("repro_http_requests_total",
                labels={"method": "GET", "status": "200"})
    metrics.inc("repro_http_requests_total",
                labels={"method": "POST", "status": "404"})
    metrics.set_gauge("repro_service_queue_depth", 3, help="Jobs queued.")
    # Binary-exact observations so the _sum line is byte-stable.
    for value in (0.00390625, 0.03125, 1.5):
        metrics.observe("repro_service_submit_seconds", value,
                        help="Submit latency.", bounds=(0.005, 0.05))
    return metrics


def test_busy_registry_scrapes_to_the_golden_text():
    assert render_prometheus(_busy_registry()) == _GOLDEN


def test_two_snapshots_of_the_same_state_are_byte_identical():
    metrics = _busy_registry()
    assert render_prometheus(metrics) == render_prometheus(metrics)


# -- the scrape parser ----------------------------------------------------


def test_parse_round_trips_the_golden_scrape():
    values = parse_exposition(_GOLDEN)
    assert values['repro_http_requests_total{method="GET",status="200"}'] == 2
    assert values["repro_service_queue_depth"] == 3
    assert values['repro_service_submit_seconds_bucket{le="+Inf"}'] == 3
    assert values["repro_service_submit_seconds_sum"] == 1.53515625
    # Comment lines never become series.
    assert not any(key.startswith("#") for key in values)


def test_parse_skips_comments_blanks_and_garbage():
    values = parse_exposition("# HELP x y\n\nnot-a-number-line abc\nok 4\n")
    assert values == {"ok": 4.0}


def test_parse_handles_special_values():
    values = parse_exposition("a +Inf\nb -Inf\nc NaN\n")
    assert values["a"] == float("inf")
    assert values["b"] == float("-inf")
    assert math.isnan(values["c"])


@pytest.mark.parametrize("series,expected", [
    ("plain", ("plain", {})),
    ('jobs{state="running"}', ("jobs", {"state": "running"})),
    ('req{method="GET",status="200"}',
     ("req", {"method": "GET", "status": "200"})),
    ('odd{path="a\\"b\\\\c\\nd"}', ("odd", {"path": 'a"b\\c\nd'})),
])
def test_split_series_inverts_the_renderer(series, expected):
    assert split_series(series) == expected
