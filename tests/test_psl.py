"""Public Suffix List algorithm."""

import pytest

from repro.psl import (
    PublicSuffixList,
    default_list,
    is_third_party,
    public_suffix,
    registrable_domain,
)


@pytest.mark.parametrize("host,suffix", [
    ("example.com", "com"),
    ("www.example.com", "com"),
    ("shop.co.uk", "co.uk"),
    ("www.shop.co.uk", "co.uk"),
    ("store.co.jp", "co.jp"),
    ("a.b.c.example.net", "net"),
    ("app.herokuapp.com", "herokuapp.com"),
])
def test_public_suffix(host, suffix):
    assert public_suffix(host) == suffix


@pytest.mark.parametrize("host,registrable", [
    ("example.com", "example.com"),
    ("www.example.com", "example.com"),
    ("deep.sub.example.com", "example.com"),
    ("shop.co.uk", "shop.co.uk"),
    ("www.shop.co.uk", "shop.co.uk"),
    ("pixel-sync.herokuapp.com", "pixel-sync.herokuapp.com"),
])
def test_registrable_domain(host, registrable):
    assert registrable_domain(host) == registrable


def test_suffix_itself_has_no_registrable_domain():
    assert registrable_domain("com") is None
    assert registrable_domain("co.uk") is None
    assert registrable_domain("herokuapp.com") is None


def test_wildcard_rule():
    # *.kobe.jp makes every label under kobe.jp a public suffix.
    assert public_suffix("foo.kobe.jp") == "foo.kobe.jp"
    assert registrable_domain("shop.foo.kobe.jp") == "shop.foo.kobe.jp"


def test_exception_rule():
    # !city.kobe.jp overrides the wildcard.
    assert public_suffix("city.kobe.jp") == "kobe.jp"
    assert registrable_domain("city.kobe.jp") == "city.kobe.jp"
    assert registrable_domain("www.city.kobe.jp") == "city.kobe.jp"


def test_unknown_tld_implicit_star():
    assert public_suffix("tracker01.example") == "example"
    assert registrable_domain("www.tracker01.example") == "tracker01.example"


def test_same_party():
    psl = default_list()
    assert psl.same_party("www.shop.com", "cdn.shop.com")
    assert psl.same_party("shop.com", "shop.com")
    assert not psl.same_party("www.shop.com", "www.tracker.net")


def test_third_party_classification():
    assert is_third_party("www.facebook.com", "www.loccitane.com")
    assert not is_third_party("metrics.loccitane.com", "www.loccitane.com")


def test_case_and_trailing_dot_normalization():
    assert registrable_domain("WWW.Example.COM.") == "example.com"


def test_empty_host_rejected():
    with pytest.raises(ValueError):
        public_suffix("")


def test_custom_rule_text():
    psl = PublicSuffixList("com\nfoo.com\n")
    assert psl.public_suffix("bar.foo.com") == "foo.com"
    assert psl.registrable_domain("a.bar.foo.com") == "bar.foo.com"


def test_default_list_is_cached():
    assert default_list() is default_list()
