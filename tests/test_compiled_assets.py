"""The compiled-assets API and its hard invariant.

:class:`repro.core.CompiledStudyAssets` is the single construction path
for the crawl/analyze hot path's shared state; these tests pin down

* the API surface (construction, spec round-trip, process memo, seeding,
  eviction, rule-set compilation, detector/token factories),
* trace equivalence (a reused compiled token set replays the exact
  funnel a fresh one would have recorded), and
* the hard invariant: the merged ``CrawlDataset.fingerprint()`` is
  bit-identical with and without precompiled assets, at every worker
  count, seeds 0-4, faults on and off.
"""

from __future__ import annotations

import warnings

import pytest

from repro.blocklist import RuleSet, easyprivacy_text
from repro.blocklist.matcher import CompiledRuleSet
from repro.core import CompiledStudyAssets, Study, StudyConfig
from repro.core.assets import (
    _PROCESS_ASSETS,
    _PROCESS_ASSETS_LIMIT,
    StudyAssetsSpec,
    clear_process_assets,
)
from repro.core.detector import DetectionResult, leaking_requests
from repro.core.tokens import CandidateTokenSet
from repro.crawler import GeneratedPopulationSpec, ParallelCrawler
from repro.netsim.faults import FaultPlan
from repro.obs import Recorder
from repro.websim.generator import GeneratorConfig

_CONFIG = GeneratorConfig(n_sites=10, n_trackers=4, leak_probability=0.6,
                          confirmation_probability=0.5)
_NUM_SHARDS = 5


def _spec(seed: int) -> GeneratedPopulationSpec:
    return GeneratedPopulationSpec(seed=seed, config=_CONFIG)


def _assets(seed: int) -> CompiledStudyAssets:
    spec = _spec(seed)
    return CompiledStudyAssets.for_population(spec.build(),
                                              population_spec=spec)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_process_assets()
    yield
    clear_process_assets()


# ---------------------------------------------------------------------------
# The hard invariant: precompiled assets never move a fingerprint.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_fingerprint_invariant_across_workers_and_faults(seed):
    """Seeds 0-4 x workers {1,2,4} +/- faults: assets path == plain path."""
    def fingerprint(workers, fault_seed, assets):
        clear_process_assets()
        plan = (FaultPlan(seed=fault_seed, transient_rate=0.25)
                if fault_seed is not None else None)
        return ParallelCrawler(_spec(seed), workers=workers,
                               num_shards=_NUM_SHARDS, fault_plan=plan,
                               assets=assets).crawl().fingerprint()

    for fault_seed in (None, seed + 100):
        reference = fingerprint(1, fault_seed, assets=None)
        for workers in (1, 2, 4):
            assert fingerprint(workers, fault_seed,
                               assets=_assets(seed)) == reference


def test_parallel_crawler_reuses_the_assets_population():
    assets = _assets(0)
    engine = ParallelCrawler(_spec(0), workers=1, num_shards=_NUM_SHARDS,
                             assets=assets)
    dataset = engine.crawl()
    assert dataset.population is assets.population


def test_study_crawl_and_analyze_thread_one_bundle():
    spec = _spec(1)
    study = Study(spec.build(), population_spec=spec,
                  config=StudyConfig(workers=2, num_shards=_NUM_SHARDS))
    assert study.assets() is study.assets()  # built once, cached
    dataset = study.crawl().dataset
    result = study.analyze(dataset)
    # A fresh study without the shared bundle, analyzing the same
    # dataset, agrees event-for-event.
    plain = Study(spec.build()).analyze(dataset)
    assert result.events == plain.events
    assert result.events, "seeded study produced no leak events"


def test_study_config_accepts_a_shared_bundle():
    assets = _assets(2)
    study = Study(assets.population,
                  config=StudyConfig(assets=assets))
    assert study.assets() is assets
    other = Study(assets.population,
                  config=StudyConfig(assets=assets))
    assert other.assets() is assets  # several studies share one bundle


# ---------------------------------------------------------------------------
# Construction, spec round-trip, and the process memo.
# ---------------------------------------------------------------------------

def test_for_population_exposes_identity():
    assets = _assets(0)
    assert assets.persona is assets.population.persona
    assert assets.catalog is assets.population.catalog
    assert assets.tokens() is assets.tokens()  # compiled once


def test_spec_requires_a_population_spec():
    population = _spec(0).build()
    bare = CompiledStudyAssets.for_population(population)
    with pytest.raises(ValueError):
        bare.spec()


def test_spec_round_trip_memoises_per_process():
    spec = _assets(3).spec()
    first = spec.compiled()
    assert spec.compiled() is first
    # An equal-by-value recipe resolves to the same bundle.
    assert StudyAssetsSpec(population_spec=_spec(3)).compiled() is first
    clear_process_assets()
    assert spec.compiled() is not first


def test_seed_prepopulates_the_memo():
    assets = _assets(4)
    spec = assets.spec()
    spec.seed(assets)
    assert spec.compiled() is assets


def test_memo_eviction_is_bounded():
    for seed in range(_PROCESS_ASSETS_LIMIT + 2):
        StudyAssetsSpec(population_spec=_spec(seed)).compiled()
    assert len(_PROCESS_ASSETS) == _PROCESS_ASSETS_LIMIT


def test_compile_rules_memoises_and_passes_compiled_through():
    assets = _assets(0)
    rules = RuleSet.from_text(easyprivacy_text())
    compiled = assets.compile_rules(rules)
    assert isinstance(compiled, CompiledRuleSet)
    assert assets.compile_rules(rules) is compiled
    assert assets.compile_rules(compiled) is compiled


# ---------------------------------------------------------------------------
# Trace equivalence: compiled state replays the exact inline funnel.
# ---------------------------------------------------------------------------

def test_replayed_token_funnel_matches_inline_build():
    population = _spec(0).build()
    inline = Recorder()
    CandidateTokenSet(population.persona, recorder=inline)
    assets = CompiledStudyAssets.for_population(population)
    replayed = Recorder()
    assets.replay_token_funnel(replayed)
    assert replayed.snapshot() == inline.snapshot()


def test_analyze_trace_identical_with_and_without_assets():
    spec = _spec(1)
    dataset = Study(spec.build()).crawl().dataset

    def snapshot(config):
        recorder = Recorder()
        study = Study(dataset.population,
                      config=config.replace(recorder=recorder))
        study.analyze(dataset)
        return recorder.snapshot()

    plain = snapshot(StudyConfig())
    assets = CompiledStudyAssets.for_population(dataset.population)
    assets.tokens()  # pre-compile before any recorder exists
    assert snapshot(StudyConfig(assets=assets)) == plain


# ---------------------------------------------------------------------------
# Detector: single-pass results and the deprecated helper.
# ---------------------------------------------------------------------------

def test_detector_run_is_one_pass_over_detect():
    assets = _assets(0)
    dataset = ParallelCrawler(_spec(0), workers=1,
                              num_shards=_NUM_SHARDS,
                              assets=assets).crawl()
    detector = assets.detector()
    detection = detector.run(dataset.log)
    assert isinstance(detection, DetectionResult)
    assert detection.events == detector.detect(dataset.log)
    assert detection.leaking_entry_count == len(detection.leaking_entries)
    assert detection.entries_scanned <= len(dataset.log.entries)


def test_leaking_requests_is_a_deprecated_wrapper():
    assets = _assets(0)
    dataset = ParallelCrawler(_spec(0), workers=1,
                              num_shards=_NUM_SHARDS,
                              assets=assets).crawl()
    detector = assets.detector()
    expected = detector.run(dataset.log).leaking_entries
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = leaking_requests(dataset.log, detector)
    assert legacy == expected
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
