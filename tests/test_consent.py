"""Consent banners: CMP mechanics and tracker gating."""

import pytest

from repro.browser import Browser, vanilla_firefox
from repro.core import CandidateTokenSet, LeakAnalysis, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.netsim import STAGE_HOMEPAGE
from repro.websim import (
    LeakBehavior,
    TrackerEmbed,
    Website,
    build_default_catalog,
)
from repro.websim.consent import (
    CMP_PROVIDERS,
    CONSENT_ACCEPT_ALL,
    CONSENT_COOKIE,
    CONSENT_ESSENTIAL_ONLY,
    CONSENT_REJECT_ALL,
    ConsentBanner,
    grants_tracking,
)
from repro.websim.population import Population


def _population(banner):
    catalog = build_default_catalog()
    site = Website(
        domain="shop.example",
        embeds=[TrackerEmbed(catalog.get("facebook.com"),
                             LeakBehavior(("uri",), (("sha256",),)))],
        consent=banner)
    return Population(sites={"shop.example": site}, catalog=catalog)


def _browser(population, policy=CONSENT_ACCEPT_ALL):
    return Browser(profile=vanilla_firefox(),
                   server=population.build_server(),
                   resolver=population.resolver(),
                   catalog=population.catalog,
                   consent_policy=policy)


def test_banner_validates_provider():
    with pytest.raises(ValueError):
        ConsentBanner(provider="not-a-cmp.example")


def test_grants_tracking_mapping():
    assert grants_tracking(CONSENT_ACCEPT_ALL)
    assert not grants_tracking(CONSENT_REJECT_ALL)
    assert not grants_tracking(CONSENT_ESSENTIAL_ONLY)
    with pytest.raises(ValueError):
        grants_tracking("maybe")


def test_browser_rejects_unknown_policy():
    population = _population(ConsentBanner(provider="cookielaw.org"))
    with pytest.raises(ValueError):
        _browser(population, policy="whatever")


def test_accept_all_sets_cookie_and_sends_receipt():
    population = _population(ConsentBanner(provider="cookielaw.org"))
    browser = _browser(population)
    site = population.sites["shop.example"]
    browser.visit(site, site.page_url("home"), STAGE_HOMEPAGE)
    consent_cookies = [c for c in browser.jar.all_cookies()
                       if c.name == CONSENT_COOKIE]
    assert consent_cookies and consent_cookies[0].value == \
        CONSENT_ACCEPT_ALL
    receipts = [e for e in browser.log
                if e.request.url.host == "consent.cookielaw.org"]
    assert len(receipts) == 1
    assert receipts[0].request.method == "POST"


def test_banner_answered_once_per_site():
    population = _population(ConsentBanner(provider="didomi.io"))
    browser = _browser(population)
    site = population.sites["shop.example"]
    browser.visit(site, site.page_url("home"), STAGE_HOMEPAGE)
    browser.visit(site, site.page_url("product"), "subpage")
    receipts = [e for e in browser.log
                if e.request.url.host == "consent.didomi.io"]
    assert len(receipts) == 1


def test_reject_all_suppresses_honoring_trackers():
    population = _population(ConsentBanner(provider="cookielaw.org",
                                           honors_consent=True))
    dataset = StudyCrawler(population,
                           consent_policy=CONSENT_REJECT_ALL).crawl()
    fb_requests = [e for e in dataset.log
                   if e.request.url.host == "www.facebook.com"
                   and not e.was_blocked]
    assert fb_requests == []
    assert dataset.flows["shop.example"].succeeded


def test_dark_pattern_site_ignores_rejection():
    population = _population(ConsentBanner(provider="cookielaw.org",
                                           honors_consent=False))
    dataset = StudyCrawler(population,
                           consent_policy=CONSENT_REJECT_ALL).crawl()
    detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                            catalog=population.catalog,
                            resolver=population.resolver())
    analysis = LeakAnalysis(detector.detect(dataset.log))
    assert analysis.senders() == ["shop.example"]


def test_no_banner_site_tracks_regardless_of_policy():
    population = _population(None)
    dataset = StudyCrawler(population,
                           consent_policy=CONSENT_REJECT_ALL).crawl()
    detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                            catalog=population.catalog,
                            resolver=population.resolver())
    analysis = LeakAnalysis(detector.detect(dataset.log))
    assert analysis.senders() == ["shop.example"]


def test_cmp_infrastructure_not_treated_as_leak_receiver():
    population = _population(ConsentBanner(provider="usercentrics.eu"))
    dataset = StudyCrawler(population).crawl()
    detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                            catalog=population.catalog,
                            resolver=population.resolver())
    receivers = LeakAnalysis(detector.detect(dataset.log)).receivers()
    assert all("usercentrics" not in receiver for receiver in receivers)


@pytest.mark.parametrize("provider", sorted(CMP_PROVIDERS))
def test_all_cmp_providers_resolvable(provider):
    population = _population(ConsentBanner(provider=provider))
    resolver = population.resolver()
    assert resolver.exists("cdn.%s" % provider)
    assert resolver.exists("consent.%s" % provider)
