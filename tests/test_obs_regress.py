"""Noise-aware perf-regression gating against the committed baseline.

The acceptance contract: a synthetic 2x stage slowdown against the
committed baseline FAILS the gate, while run-to-run jitter passes.
"""

import importlib.util
import json
import os
import sys

import pytest

from repro.obs import (
    BaselineError,
    BaselineRegistry,
    check_report,
    fold_report,
    new_baseline,
)
from repro.obs.regress import (
    MAX_SAMPLES,
    MIN_GATED_SECONDS,
    median,
    read_history,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
COMMITTED = os.path.join(REPO_ROOT, "benchmarks", "baselines")


def _report(wall=8.0, crawl=8.0, analyze=6.0,
            label="generated-404/workers-1"):
    """A minimal BenchReport-shaped JSON document."""
    return {
        "schema_version": 1,
        "name": "parallel_crawl",
        "environment": {"cpu_count": 1, "python": "3.11"},
        "cases": [{"label": label, "wall_seconds": wall, "items": 404,
                   "stages": {"crawl": crawl, "analyze": analyze}}],
        "notes": [],
    }


def _seeded_baseline(samples=(8.0, 8.1, 7.9)):
    baseline = new_baseline("parallel_crawl")
    for wall in samples:
        fold_report(baseline, _report(wall=wall, crawl=wall))
    return baseline


# -- the statistics ------------------------------------------------------


def test_median_odd_even_and_empty():
    assert median([3.0]) == 3.0
    assert median([9.0, 1.0, 5.0]) == 5.0
    assert median([1.0, 2.0, 3.0, 10.0]) == 2.5
    with pytest.raises(ValueError):
        median([])


def test_fold_report_caps_samples_and_keeps_newest():
    baseline = new_baseline("parallel_crawl")
    for index in range(MAX_SAMPLES + 5):
        fold_report(baseline, _report(wall=float(index)))
    samples = baseline["cases"]["generated-404/workers-1"]["wall_seconds"]
    assert len(samples) == MAX_SAMPLES
    assert samples[-1] == float(MAX_SAMPLES + 4)   # newest kept
    assert samples[0] == 5.0                        # oldest dropped


def test_fold_report_tracks_stage_samples():
    baseline = _seeded_baseline()
    slot = baseline["cases"]["generated-404/workers-1"]
    assert len(slot["stages"]["crawl"]) == 3
    assert len(slot["stages"]["analyze"]) == 3


# -- the gate ------------------------------------------------------------


def test_two_x_stage_slowdown_fails_the_gate():
    """The acceptance case: a synthetic 2x slowdown must trip."""
    baseline = _seeded_baseline()
    slowed = _report(wall=16.0, crawl=16.0)   # 2x = +100% > +75%
    result = check_report(baseline, slowed)
    assert not result.ok
    metrics = {finding.metric for finding in result.findings}
    assert "wall_seconds" in metrics and "stage:crawl" in metrics
    finding = next(f for f in result.findings
                   if f.metric == "wall_seconds")
    assert finding.relative == pytest.approx(1.0, rel=0.05)
    assert "REGRESSION" in result.render()


def test_small_jitter_passes_the_gate():
    baseline = _seeded_baseline()
    jittered = _report(wall=9.5, crawl=9.5, analyze=6.5)   # ~+19%
    result = check_report(baseline, jittered)
    assert result.ok
    assert result.compared >= 3
    assert "OK" in result.render()


def test_speedups_never_fail_the_gate():
    result = check_report(_seeded_baseline(), _report(wall=2.0, crawl=2.0))
    assert result.ok


def test_noise_floor_skips_tiny_metrics():
    """A 0.02s stage doubling is scheduler noise, not a regression."""
    tiny = MIN_GATED_SECONDS / 2
    baseline = new_baseline("parallel_crawl")
    fold_report(baseline, _report(wall=8.0, crawl=8.0, analyze=tiny))
    slowed = _report(wall=8.0, crawl=8.0, analyze=tiny * 10)
    result = check_report(baseline, slowed)
    assert result.ok
    assert any("noise floor" in note for note in result.skipped)


def test_custom_threshold_override():
    baseline = _seeded_baseline()
    jittered = _report(wall=9.5, crawl=9.5)   # +19%
    assert check_report(baseline, jittered).ok
    tight = check_report(baseline, jittered,
                         thresholds={"wall_seconds": 0.1, "stage": 0.1})
    assert not tight.ok


def test_missing_case_is_a_note_unless_require_all():
    baseline = _seeded_baseline()
    other = _report(label="generated-404/workers-2")
    relaxed = check_report(baseline, other)
    assert relaxed.ok
    assert any("not in this run" in note for note in relaxed.skipped)
    strict = check_report(baseline, other, require_all=True)
    assert not strict.ok
    assert strict.findings[0].metric == "coverage"


def test_new_case_never_fails_the_gate():
    baseline = _seeded_baseline()
    report = _report()
    report["cases"].append({"label": "brand-new", "wall_seconds": 99.0})
    result = check_report(baseline, report)
    assert result.ok
    assert any("no baseline yet" in note for note in result.skipped)


def test_empty_baseline_raises():
    with pytest.raises(BaselineError):
        check_report(new_baseline("parallel_crawl"), _report())


# -- the registry --------------------------------------------------------


def test_registry_round_trip(tmp_path):
    registry = BaselineRegistry(str(tmp_path))
    with pytest.raises(BaselineError):
        registry.load("parallel_crawl")
    registry.update("parallel_crawl", _report(wall=8.0))
    registry.update("parallel_crawl", _report(wall=8.2))
    baseline = registry.load("parallel_crawl")
    assert baseline["cases"]["generated-404/workers-1"]["wall_seconds"] \
        == [8.0, 8.2]
    # The saved file is deterministic, committed-diff-friendly JSON.
    text = open(registry.path("parallel_crawl")).read()
    assert text == json.dumps(baseline, indent=2, sort_keys=True) + "\n"


def test_registry_rejects_malformed_baseline(tmp_path):
    registry = BaselineRegistry(str(tmp_path))
    path = registry.path("parallel_crawl")
    os.makedirs(str(tmp_path), exist_ok=True)
    with open(path, "w") as handle:
        handle.write("not json")
    with pytest.raises(BaselineError):
        registry.load("parallel_crawl")


def test_history_append_and_read(tmp_path):
    registry = BaselineRegistry(str(tmp_path))
    registry.append_history(_report(wall=8.0),
                            extra={"unix_time": 1000.0, "kind": "run"})
    registry.append_history(_report(wall=8.5),
                            extra={"unix_time": 2000.0, "kind": "run"})
    entries = read_history(registry.history_path)
    assert len(entries) == 2
    assert entries[0]["unix_time"] == 1000.0
    assert entries[1]["cases"]["generated-404/workers-1"]["wall_seconds"] \
        == 8.5
    # Append-only: a third write extends, never rewrites.
    registry.append_history(_report(wall=9.0))
    assert len(read_history(registry.history_path)) == 3


# -- the committed baseline ----------------------------------------------


def test_committed_baseline_is_loadable_and_gates_a_2x_slowdown():
    """The real registry file under benchmarks/baselines/ works."""
    registry = BaselineRegistry(COMMITTED)
    baseline = registry.load("parallel_crawl")
    cases = baseline["cases"]
    assert "generated-404/workers-1" in cases
    assert "generated-404/workers-2" in cases

    label = "generated-404/workers-1"
    base_median = median([float(s)
                          for s in cases[label]["wall_seconds"]])
    doubled = {
        "cases": [{"label": label, "wall_seconds": 2.0 * base_median,
                   "stages": {stage: 2.0 * median(samples)
                              for stage, samples
                              in cases[label]["stages"].items()}}],
        "environment": None,
    }
    result = check_report(baseline, doubled)
    assert not result.ok


def test_committed_history_matches_baseline_sample_count():
    entries = read_history(
        BaselineRegistry(COMMITTED).history_path)
    assert entries, "seeded history must not be empty"
    for entry in entries:
        assert entry["bench"] in ("parallel_crawl", "micro")
        assert "unix_time" in entry
    # The history spans every committed baseline's bench.
    assert {e["bench"] for e in entries} == {"parallel_crawl", "micro"}


# -- the harness CLI -----------------------------------------------------


def _load_harness():
    path = os.path.join(REPO_ROOT, "benchmarks", "harness.py")
    spec = importlib.util.spec_from_file_location("bench_harness", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_harness"] = module
    spec.loader.exec_module(module)
    return module


def test_harness_check_passes_and_fails_correctly(tmp_path, capsys):
    harness = _load_harness()
    registry = BaselineRegistry(str(tmp_path / "baselines"))
    registry.update("parallel_crawl", _report(wall=8.0))

    good = tmp_path / "good.json"
    good.write_text(json.dumps(_report(wall=8.1)))
    assert harness.main(["--check", str(good),
                         "--baseline-dir", registry.root]) == 0
    assert "perf gate: OK" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(_report(wall=16.0, crawl=16.0)))
    assert harness.main(["--check", str(bad),
                         "--baseline-dir", registry.root]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_harness_check_merges_multiple_reports(tmp_path, capsys):
    harness = _load_harness()
    registry = BaselineRegistry(str(tmp_path / "baselines"))
    registry.update("parallel_crawl", _report(wall=8.0))
    registry.update("parallel_crawl",
                    _report(wall=10.0, label="generated-404/workers-2"))

    one = tmp_path / "one.json"
    one.write_text(json.dumps(_report(wall=8.1)))
    two = tmp_path / "two.json"
    two.write_text(json.dumps(
        _report(wall=10.2, label="generated-404/workers-2")))
    assert harness.main(["--check", str(one), str(two),
                         "--baseline-dir", registry.root]) == 0
    out = capsys.readouterr().out
    assert "not in this run" not in out


def test_harness_check_missing_baseline_exits_two(tmp_path, capsys):
    harness = _load_harness()
    report = tmp_path / "r.json"
    report.write_text(json.dumps(_report()))
    assert harness.main(["--check", str(report),
                         "--baseline-dir", str(tmp_path / "empty")]) == 2
    assert "error" in capsys.readouterr().err


def test_harness_append_history(tmp_path, capsys):
    harness = _load_harness()
    report = tmp_path / "r.json"
    report.write_text(json.dumps(_report(wall=8.0)))
    history = tmp_path / "hist.jsonl"
    assert harness.main(["--append-history", str(report),
                         "--baseline-dir", str(tmp_path),
                         "--history", str(history)]) == 0
    entries = read_history(str(history))
    assert len(entries) == 1
    assert entries[0]["kind"] == "run" and "unix_time" in entries[0]
