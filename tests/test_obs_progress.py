"""Live progress: heartbeats stream without perturbing the crawl.

The two contracts under test:

* **Fingerprint invariance** — a crawl with ``--progress`` on is
  bit-identical to one with it off, at every worker count.
* **Counter reconciliation** — summing every heartbeat's counter
  deltas reproduces the merged recorder's ``crawl.*`` counters exactly
  (heartbeats and trace describe the same crawl, in the same units).
"""

import io
import pickle

import pytest

from repro.core import Study, StudyConfig
from repro.crawler import GeneratedPopulationSpec, ParallelCrawler
from repro.obs import HeartbeatEvent, ProgressAggregator, read_progress_log
from repro.obs.progress import final_heartbeat, step_heartbeat
from repro.websim.generator import GeneratorConfig

_CONFIG = GeneratorConfig(n_sites=10, n_trackers=4, leak_probability=0.6,
                          confirmation_probability=0.4)
_NUM_SHARDS = 5


def _study(seed, workers, progress=None, trace=False):
    spec = GeneratedPopulationSpec(seed=seed, config=_CONFIG)
    config = StudyConfig(workers=workers, num_shards=_NUM_SHARDS,
                         progress=progress)
    if trace:
        config = config.with_observability()
    return Study(spec.build(), config=config, population_spec=spec)


# -- fingerprint invariance ----------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_progress_never_changes_the_fingerprint(workers):
    baseline = _study(0, workers).crawl().dataset.fingerprint()
    watched = _study(0, workers, progress=ProgressAggregator())
    assert watched.crawl().dataset.fingerprint() == baseline


def test_progress_log_never_changes_the_fingerprint(tmp_path):
    baseline = _study(0, 2).crawl().dataset.fingerprint()
    sink = ProgressAggregator(stream=io.StringIO(),
                              jsonl_path=str(tmp_path / "p.jsonl"))
    with sink:
        watched = _study(0, 2, progress=sink).crawl()
    assert watched.dataset.fingerprint() == baseline


def test_progress_and_tracing_compose():
    """Progress + tracing together still match the plain fingerprint."""
    baseline = _study(0, 2).crawl().dataset.fingerprint()
    outcome = _study(0, 2, progress=ProgressAggregator(),
                     trace=True).crawl()
    assert outcome.dataset.fingerprint() == baseline
    assert outcome.recorder is not None


# -- counter reconciliation ----------------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
def test_heartbeat_counters_reconcile_with_the_merged_trace(workers):
    sink = ProgressAggregator()
    study = _study(0, workers, progress=sink, trace=True)
    outcome = study.crawl()
    recorder_counters = {
        name: counter.value
        for name, counter in outcome.recorder.counters.items()
        if name.startswith("crawl.")}
    assert sink.counter_totals() == recorder_counters
    assert sink.counter_totals()["crawl.sites"] == _CONFIG.n_sites


def test_aggregator_totals_cover_every_shard():
    sink = ProgressAggregator()
    _study(0, 4, progress=sink).crawl()
    assert sink.crawled == sink.total == _CONFIG.n_sites
    assert sink.shards_seen == _NUM_SHARDS
    assert sink.shards_done == _NUM_SHARDS
    # One step event per site plus one final marker per shard.
    assert sink.events_seen == _CONFIG.n_sites + _NUM_SHARDS
    assert sum(sink.status_counts.values()) == _CONFIG.n_sites


def test_serial_study_emits_single_shard_heartbeats():
    sink = ProgressAggregator()
    _study(0, 1, progress=sink).crawl()
    assert sink.shards_seen == 1 and sink.shards_done == 1
    assert sink.crawled == _CONFIG.n_sites
    snapshot = sink.snapshot()
    assert snapshot["events"] == _CONFIG.n_sites + 1
    assert snapshot["counters"]["crawl.sites"] == _CONFIG.n_sites


def test_parallel_crawler_direct_progress():
    """The engine-level API takes the sink too (no Study wrapper)."""
    sink = ProgressAggregator()
    spec = GeneratedPopulationSpec(seed=0, config=_CONFIG)
    ParallelCrawler(spec, workers=2, num_shards=_NUM_SHARDS,
                    progress=sink).run()
    assert sink.crawled == _CONFIG.n_sites
    assert sink.shards_done == _NUM_SHARDS


# -- the machine-readable log --------------------------------------------


def test_progress_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "progress.jsonl")
    with ProgressAggregator(jsonl_path=path) as sink:
        _study(0, 2, progress=sink).crawl()
    events = read_progress_log(path)
    assert len(events) == _CONFIG.n_sites + _NUM_SHARDS
    step_events = [e for e in events if not e["final"]]
    assert len(step_events) == _CONFIG.n_sites
    for event in step_events:
        assert event["type"] == "heartbeat" and event["schema"] == 1
        assert event["domain"] and event["status"]
        assert event["counters"]["crawl.sites"] == 1
    finals = [e for e in events if e["final"]]
    assert sorted(e["shard"] for e in finals) == list(range(_NUM_SHARDS))
    # Summing logged deltas reproduces the aggregator's totals.
    totals = {}
    for event in events:
        for name, delta in event["counters"].items():
            totals[name] = totals.get(name, 0.0) + delta
    assert totals == sink.counter_totals()


# -- rendering -----------------------------------------------------------


def test_render_stream_gets_one_line_per_event():
    stream = io.StringIO()
    sink = ProgressAggregator(stream=stream)
    _study(0, 1, progress=sink).crawl()
    lines = stream.getvalue().strip().split("\n")
    assert len(lines) == sink.events_seen
    assert lines[-1].startswith("crawl %d/%d sites"
                                % (_CONFIG.n_sites, _CONFIG.n_sites))
    assert "[shard 0: done]" in lines[-1]


def test_render_line_shape():
    sink = ProgressAggregator()
    sink(step_heartbeat(shard=3, crawled=2, total=5, domain="x.com",
                        status="success", attempts=2, requests=7,
                        retried=1, quarantined=0))
    line = sink.render_line()
    assert "crawl 2/5 sites" in line
    assert "ok 1" in line and "retried 1" in line
    sink(final_heartbeat(shard=3, crawled=5, total=5, retried=1,
                         quarantined=1))
    assert "shards 1/1 done" in sink.render_line()


# -- event mechanics -----------------------------------------------------


def test_heartbeat_events_are_picklable():
    """Events cross the worker->parent process boundary."""
    event = step_heartbeat(shard=1, crawled=3, total=4, domain="x.com",
                           status="success", attempts=1, requests=9,
                           retried=0, quarantined=0)
    clone = pickle.loads(pickle.dumps(event))
    assert clone == event
    assert clone.counters == {"crawl.sites": 1,
                              "crawl.flows.success": 1,
                              "crawl.requests": 9.0}


def test_step_heartbeat_counts_retries_only_past_first_attempt():
    single = step_heartbeat(shard=0, crawled=1, total=1, domain="x",
                            status="success", attempts=1, requests=1,
                            retried=0, quarantined=0)
    assert "crawl.retried_flows" not in single.counters
    retried = step_heartbeat(shard=0, crawled=1, total=1, domain="x",
                             status="success", attempts=3, requests=1,
                             retried=1, quarantined=0)
    assert retried.counters["crawl.retried_flows"] == 1


def test_aggregator_close_is_idempotent(tmp_path):
    sink = ProgressAggregator(jsonl_path=str(tmp_path / "p.jsonl"))
    sink(final_heartbeat(shard=0, crawled=0, total=0, retried=0,
                         quarantined=0))
    sink.close()
    sink.close()
    assert sink._jsonl is None
    assert read_progress_log(str(tmp_path / "p.jsonl"))


def test_heartbeat_as_dict_is_sorted_and_json_stable():
    event = HeartbeatEvent(shard=0, crawled=1, total=2,
                           counters={"b": 2.0, "a": 1.0})
    assert list(event.as_dict()["counters"]) == ["a", "b"]


# -- crash tolerance ------------------------------------------------------


def _logged_events(tmp_path, n=3):
    path = str(tmp_path / "progress.jsonl")
    with ProgressAggregator(jsonl_path=path) as sink:
        for index in range(n):
            sink(step_heartbeat(shard=0, crawled=index + 1, total=n,
                                domain="site%d.example" % index,
                                status="success", attempts=1, requests=2,
                                retried=0, quarantined=0))
    return path


def test_truncated_trailing_progress_line_is_skipped_with_warning(tmp_path):
    """A writer killed mid-append truncates at most the final line; the
    loader salvages everything before it instead of raising."""
    path = _logged_events(tmp_path, n=3)
    intact = read_progress_log(path)
    with open(path, "a") as handle:
        handle.write('{"type": "heartbeat", "sha')     # torn final append
    with pytest.warns(UserWarning, match="truncated"):
        salvaged = read_progress_log(path)
    assert salvaged == intact


def test_malformed_interior_progress_line_still_raises(tmp_path):
    path = _logged_events(tmp_path, n=2)
    lines = open(path).read().splitlines()
    lines.insert(1, "not json at all")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(ValueError):
        read_progress_log(path)


def test_progress_jsonl_is_flushed_per_event(tmp_path):
    """Every append is durable before the next event: a reader (or a
    post-crash salvage) sees each line as soon as it was emitted."""
    path = str(tmp_path / "progress.jsonl")
    sink = ProgressAggregator(jsonl_path=path)
    try:
        sink(step_heartbeat(shard=0, crawled=1, total=2, domain="a.example",
                            status="success", attempts=1, requests=1,
                            retried=0, quarantined=0))
        # Deliberately *before* close(): the line must already be on disk.
        assert len(read_progress_log(path)) == 1
    finally:
        sink.close()
