"""HAR export and dataset-release export."""

import csv
import io
import json

import pytest

from repro.datasets.export import (
    leak_urls_csv,
    receivers_csv,
    senders_csv,
    summary_json,
    write_release,
)
from repro.netsim import CaptureLog
from repro.netsim.harexport import to_har, to_har_json


@pytest.fixture(scope="module")
def study_result(study_spec):
    from repro import Study
    study = Study(study_spec.population)
    return study.run()


# -- HAR --------------------------------------------------------------------

def test_har_structure(crawl):
    har = to_har(crawl.log)
    log = har["log"]
    assert log["version"] == "1.2"
    assert log["creator"]["name"] == "repro"
    assert len(log["entries"]) == len(crawl.log)
    assert log["pages"]


def test_har_entry_fields(crawl):
    entry = to_har(crawl.log)["log"]["entries"][0]
    assert entry["request"]["method"] in ("GET", "POST")
    assert entry["request"]["url"].startswith("https://")
    assert entry["startedDateTime"].endswith("Z")
    assert "pageref" in entry and "_stage" in entry


def test_har_post_data_included(crawl):
    har = to_har(crawl.log)
    posts = [e for e in har["log"]["entries"]
             if e["request"]["method"] == "POST"]
    assert posts
    assert any("postData" in e["request"] for e in posts)


def test_har_blocked_entries_status_zero():
    from repro.browser import brave
    from repro.crawler import StudyCrawler
    from repro.websim.generator import generate_population
    population = generate_population(seed=2)
    dataset = StudyCrawler(
        population, profile=brave(population.catalog)).crawl()
    har = to_har(dataset.log)
    blocked = [e for e in har["log"]["entries"]
               if e["_blockedBy"] is not None]
    assert blocked
    assert all(e["response"]["status"] == 0 for e in blocked)


def test_har_json_parses(crawl):
    parsed = json.loads(to_har_json(crawl.log))
    assert parsed["log"]["version"] == "1.2"


def test_har_empty_log():
    har = to_har(CaptureLog())
    assert har["log"]["entries"] == []
    assert har["log"]["pages"] == []


# -- dataset release ---------------------------------------------------------

def _rows(text):
    return list(csv.DictReader(io.StringIO(text)))


def test_senders_csv_complete(study_result):
    rows = _rows(senders_csv(study_result))
    assert len(rows) == 130
    loccitane = next(r for r in rows if r["sender"] == "loccitane.com")
    assert int(loccitane["receivers"]) == 16
    assert loccitane["policy_class"]


def test_receivers_csv_flags(study_result):
    rows = _rows(receivers_csv(study_result))
    assert len(rows) == 100
    facebook = next(r for r in rows if r["receiver"] == "facebook.com")
    assert int(facebook["senders"]) == 78
    assert facebook["cross_site"] == "yes"
    assert facebook["persistent"] == "yes"
    assert "udff[em]" in facebook["trackid_params"]
    singles = [r for r in rows if int(r["senders"]) == 1]
    assert len(singles) == 58


def test_leak_urls_csv_volume(study_result):
    rows = _rows(leak_urls_csv(study_result))
    assert len(rows) == len(study_result.events)
    assert all(row["url"].startswith("https://") for row in rows)


def test_summary_json_fields(study_result):
    summary = json.loads(summary_json(study_result))
    assert summary["senders"] == 130
    assert summary["persistent_providers"] == 20
    assert summary["marketing_mail"]["inbox"] == 2172


def test_write_release(tmp_path, study_result):
    written = write_release(study_result, str(tmp_path / "release"))
    assert len(written) == 4
    for path in written:
        assert (tmp_path / "release").exists()
    assert (tmp_path / "release" / "summary.json").read_text()
