"""End-to-end reproduction checks against the paper's published numbers.

These tests consume the session-scoped crawl/detection fixtures: the full
calibrated population is crawled with the measurement browser and every
number below is *measured from captured traffic* — the assertions compare
those measurements with the paper.

Exact assertions are used where the synthetic web pins the value; the few
quantities the paper's own marginals leave over-constrained (documented in
EXPERIMENTS.md) get tolerance-based assertions.
"""

import pytest

from repro.core.detector import leaking_requests
from repro.datasets import paper
from repro.tracking import PersistenceAnalyzer


# -- §3.2 population ---------------------------------------------------------

def test_population_sizes(study_spec):
    assert len(study_spec.population.sites) == paper.TRANCO_SHOPPING_SITES
    assert len(study_spec.leaking_domains) == paper.LEAKING_SENDERS


def test_flow_status_breakdown(crawl):
    counts = crawl.status_counts()
    assert counts["success"] == paper.SUCCESSFUL_FLOWS
    assert counts["unreachable"] == paper.UNREACHABLE_SITES
    assert counts["no_auth"] == paper.NO_AUTH_SITES
    assert counts["signup_blocked"] == paper.SIGNUP_BLOCKED_SITES


def test_signup_block_reasons(crawl):
    reasons = {}
    for flow in crawl.flows.values():
        if flow.block_reason:
            reasons[flow.block_reason] = reasons.get(flow.block_reason, 0) + 1
    assert reasons["phone_verification"] == paper.SIGNUP_BLOCKED_PHONE
    assert reasons["identity_documents"] == paper.SIGNUP_BLOCKED_IDENTITY
    assert reasons["region_restricted"] == paper.SIGNUP_BLOCKED_REGION


def test_email_confirmation_site_count(study_spec):
    confirming = [site for site in study_spec.population.site_list()
                  if site.auth.requires_email_confirmation
                  and site.is_crawlable]
    assert len(confirming) == paper.EMAIL_CONFIRMATION_SITES


def test_bot_detection_site_count(study_spec):
    detecting = [site for site in study_spec.population.site_list()
                 if site.auth.bot_detection and site.is_crawlable]
    assert len(detecting) == paper.BOT_DETECTION_SITES


# -- §4.2 headline ------------------------------------------------------------

def test_headline_senders_receivers(analysis):
    assert len(analysis.senders()) == paper.LEAKING_SENDERS
    assert len(analysis.receivers()) == paper.LEAK_RECEIVERS


def test_pct_sites_leaking(analysis):
    stats = analysis.headline(total_sites=paper.SUCCESSFUL_FLOWS)
    assert abs(stats["pct_sites_leaking"] - paper.PCT_SITES_LEAKING) < 0.5


def test_mean_receivers_per_sender(analysis):
    stats = analysis.headline()
    assert abs(stats["mean_receivers_per_sender"]
               - paper.MEAN_RECEIVERS_PER_SENDER) < 0.1


def test_max_receivers_is_loccitane(analysis):
    sender, count = analysis.max_receiver_sender()
    assert sender == paper.MAX_RECEIVERS_SENDER_DOMAIN
    assert count == paper.MAX_RECEIVERS_PER_SENDER


def test_senders_with_3plus(analysis):
    stats = analysis.headline()
    assert abs(stats["pct_senders_with_3plus"]
               - paper.PCT_SENDERS_WITH_3PLUS_RECEIVERS) < 5.0


def test_leaking_request_volume(crawl, detector):
    count = len(leaking_requests(crawl.log, detector))
    # Same order of magnitude and within ~10% of the paper's 1,522.
    assert abs(count - paper.LEAKING_REQUESTS) / paper.LEAKING_REQUESTS < 0.10


def test_single_appearance_receivers(analysis):
    assert len(analysis.single_sender_receivers()) == \
        paper.SINGLE_APPEARANCE_RECEIVERS


# -- Figure 2 --------------------------------------------------------------------

def test_facebook_tops_figure2(analysis):
    ranking = analysis.figure2(top_n=15)
    domain, count, pct = ranking[0]
    assert domain == "facebook.com"
    assert count == paper.FACEBOOK_SENDERS
    assert abs(pct - paper.FACEBOOK_SENDER_PCT) < 0.5


def test_figure2_contains_expected_majors(analysis):
    top = {domain for domain, _, _ in analysis.figure2(top_n=15)}
    for expected in ("facebook.com", "criteo.com", "pinterest.com",
                     "snapchat.com", "google-analytics.com"):
        assert expected in top


# -- Table 1 ----------------------------------------------------------------------

def _rows(table):
    return {row.label: row for row in table}


def test_table1a_method_breakdown(analysis):
    rows = _rows(analysis.table1a())
    for label, (senders, receivers) in paper.TABLE1A.items():
        measured = rows[label]
        assert abs(measured.senders - senders) <= max(2, senders * 0.1), label
        assert abs(measured.receivers - receivers) <= \
            max(2, receivers * 0.1), label


def test_table1a_pinned_cells_exact(analysis):
    rows = _rows(analysis.table1a())
    assert rows["referer"].senders == 3
    assert rows["referer"].receivers == 7
    assert rows["cookie"].senders == 5
    assert rows["cookie"].receivers == 1
    assert rows["payload"].senders == 43
    assert rows["payload"].receivers == 17
    assert rows["combined"].senders == 27
    assert rows["combined"].receivers == 8


def test_table1b_encoding_breakdown(analysis):
    rows = _rows(analysis.table1b())
    for label, (senders, receivers) in paper.TABLE1B.items():
        if label == "combined":
            continue  # see EXPERIMENTS.md: paper-internal inconsistency
        measured = rows[label]
        assert abs(measured.senders - senders) <= \
            max(2, senders * 0.15), label
        assert abs(measured.receivers - receivers) <= \
            max(2, receivers * 0.15), label


def test_table1b_pinned_cells_exact(analysis):
    rows = _rows(analysis.table1b())
    assert rows["sha256"].senders == 91
    assert rows["md5"].senders == 35
    assert rows["sha256 of md5"].senders == 2
    assert rows["sha256 of md5"].receivers == 1


def test_table1c_pii_types(analysis):
    rows = _rows(analysis.table1c())
    assert rows["username"].senders == 1
    assert rows["username"].receivers == 1
    assert rows["email,username"].senders == 3
    assert rows["email,username"].receivers == 6
    assert rows["email,name"].senders == 29
    assert rows["email,name"].receivers == 12
    assert abs(rows["email"].senders - 116) <= 12


# -- §5.2 persistent tracking -------------------------------------------------------

@pytest.fixture(scope="module")
def persistence(events):
    return PersistenceAnalyzer(events).report()


def test_cross_site_receiver_count(persistence):
    assert len(persistence.cross_site_receivers) == \
        paper.CROSS_SITE_ID_RECEIVERS


def test_twenty_persistent_providers(persistence):
    assert len(persistence.persistent_receivers) == \
        paper.PERSISTENT_TRACKING_PROVIDERS
    assert set(persistence.persistent_receivers) == set(paper.TABLE2)


def test_table2_sender_counts(persistence):
    by_receiver = {}
    for row in persistence.rows:
        by_receiver[row.receiver] = by_receiver.get(row.receiver, 0) + \
            row.senders
    for receiver, expected in (
            ("criteo.com", 37), ("pinterest.com", 33), ("snapchat.com", 20),
            ("cquotient.com", 7), ("bluecore.com", 5), ("klaviyo.com", 4),
            ("rlcdn.com", 4), ("castle.io", 2), ("zendesk.com", 2)):
        assert by_receiver[receiver] == expected, receiver


def test_table2_trackid_parameters(persistence):
    params = {}
    for row in persistence.rows:
        params.setdefault(row.receiver, set()).update(
            row.parameters.split("/"))
    assert "udff[em]" in params["facebook.com"]
    assert "p0" in params["criteo.com"]
    assert "pd" in params["pinterest.com"]
    assert "u_hem" in params["snapchat.com"]
    assert "emailId" in params["cquotient.com"]
    assert "dtm_email_hash" in params["dotomi.com"]
    assert "_kua_email_sha256" in params["krxd.net"]


def test_all_providers_track_email(persistence, events):
    providers = set(persistence.persistent_receivers)
    for event in events:
        if event.receiver in providers and event.parameter:
            if event.pii_type not in ("email", "name", "username"):
                pytest.fail("unexpected PII type %s" % event.pii_type)
    email_receivers = {e.receiver for e in events
                       if e.pii_type == "email" and e.parameter}
    assert providers <= email_receivers


# -- §4.2.3 e-mail ------------------------------------------------------------------

def test_marketing_mail_volume(crawl):
    from repro.mailsim import KIND_MARKETING
    inbox = crawl.mailbox.messages(folder="inbox", kind=KIND_MARKETING)
    spam = crawl.mailbox.messages(folder="spam", kind=KIND_MARKETING)
    assert len(inbox) == paper.MARKETING_INBOX_EMAILS
    assert len(spam) == paper.MARKETING_SPAM_EMAILS


def test_no_mail_from_leak_receivers(crawl, analysis):
    receivers = set(analysis.receivers())
    senders = set(crawl.mailbox.sender_domains())
    assert senders.isdisjoint(receivers)
