"""Leak detector: all four channels, attribution, cloaking, negatives."""

import pytest

from repro import hashes
from repro.core import CandidateTokenSet, LeakDetector
from repro.core.detector import leaking_requests
from repro.core.leakmodel import (
    CHANNEL_COOKIE,
    CHANNEL_PAYLOAD,
    CHANNEL_REFERER,
    CHANNEL_URI,
)
from repro.core.persona import DEFAULT_PERSONA
from repro.dnssim import Resolver, Zone
from repro.netsim import (
    CaptureEntry,
    CaptureLog,
    Headers,
    HttpRequest,
    HttpResponse,
    STAGE_SIGNUP,
    Url,
    encode_json,
    encode_urlencoded,
)

EMAIL = DEFAULT_PERSONA.email
SHA256_TOKEN = hashes.apply_chain(EMAIL, ["sha256"])


@pytest.fixture(scope="module")
def plain_detector():
    return LeakDetector(CandidateTokenSet(DEFAULT_PERSONA))


def _entry(url, site="shop.example", headers=None, body=b"",
           method="GET", stage=STAGE_SIGNUP, content_type=None):
    all_headers = headers or Headers()
    if content_type:
        all_headers.set("Content-Type", content_type)
    request = HttpRequest(method=method, url=Url.parse(url),
                          headers=all_headers, body=body)
    return CaptureEntry(request=request, response=HttpResponse(),
                        site=site, stage=stage,
                        page_url="https://www.%s/" % site)


def test_uri_query_leak(plain_detector):
    entry = _entry("https://t.example/p?uid=%s" % SHA256_TOKEN)
    events = plain_detector.detect_entry(entry)
    assert len(events) == 1
    event = events[0]
    assert event.channel == CHANNEL_URI
    assert event.parameter == "uid"
    assert event.pii_type == "email"
    assert event.chain == ("sha256",)
    assert event.receiver == "t.example"
    assert event.sender == "shop.example"


def test_uri_path_leak(plain_detector):
    entry = _entry("https://t.example/sync/%s/done" % SHA256_TOKEN)
    events = plain_detector.detect_entry(entry)
    assert events and events[0].location == "path"
    assert events[0].channel == CHANNEL_URI


def test_percent_encoded_plaintext_email_in_uri(plain_detector):
    entry = _entry("https://t.example/p?em=%s" %
                   EMAIL.replace("@", "%40"))
    events = plain_detector.detect_entry(entry)
    assert any(e.chain == () and e.pii_type == "email" for e in events)


def test_referer_leak(plain_detector):
    headers = Headers([("Referer",
                        "https://www.shop.example/signup?email=%s" % EMAIL)])
    entry = _entry("https://t.example/pixel.gif", headers=headers)
    events = plain_detector.detect_entry(entry)
    assert any(e.channel == CHANNEL_REFERER for e in events)


def test_cookie_header_leak(plain_detector):
    headers = Headers([("Cookie", "sid=1; uid=%s" % SHA256_TOKEN)])
    entry = _entry("https://t.example/p", headers=headers)
    events = plain_detector.detect_entry(entry)
    cookie_events = [e for e in events if e.channel == CHANNEL_COOKIE]
    assert cookie_events and cookie_events[0].parameter == "uid"


def test_payload_urlencoded_leak(plain_detector):
    body = encode_urlencoded([("u_hem", SHA256_TOKEN)])
    entry = _entry("https://t.example/p", method="POST", body=body,
                   content_type="application/x-www-form-urlencoded")
    events = plain_detector.detect_entry(entry)
    assert any(e.channel == CHANNEL_PAYLOAD and e.parameter == "u_hem"
               for e in events)


def test_payload_json_leak_with_dotted_parameter(plain_detector):
    body = encode_json({"user": {"email_hash": SHA256_TOKEN}})
    entry = _entry("https://t.example/p", method="POST", body=body,
                   content_type="application/json")
    events = plain_detector.detect_entry(entry)
    assert any(e.parameter == "user.email_hash" for e in events)


def test_payload_raw_text_fallback(plain_detector):
    entry = _entry("https://t.example/p", method="POST",
                   body=("blob %s blob" % SHA256_TOKEN).encode(),
                   content_type="text/plain")
    events = plain_detector.detect_entry(entry)
    assert any(e.channel == CHANNEL_PAYLOAD and e.parameter is None
               for e in events)


def test_first_party_requests_ignored(plain_detector):
    entry = _entry("https://www.shop.example/submit?email=%s" % EMAIL)
    assert plain_detector.detect_entry(entry) == []


def test_clean_third_party_request_no_events(plain_detector):
    entry = _entry("https://t.example/p?uid=abcdef0123456789")
    assert plain_detector.detect_entry(entry) == []


def test_blocked_entries_skipped_by_default(plain_detector):
    entry = _entry("https://t.example/p?uid=%s" % SHA256_TOKEN)
    entry.blocked_by = "shields"
    log = CaptureLog()
    log.record(entry)
    assert plain_detector.detect(log) == []
    assert len(plain_detector.detect(log, include_blocked=True)) == 1


def test_cloaked_subdomain_attributed_to_tracker_zone():
    zone = Zone()
    zone.add_cname("metrics.shop.example", "shop.example.sc.omtrdc.net")
    zone.add_a("shop.example.sc.omtrdc.net")
    detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                            resolver=Resolver(zone))
    headers = Headers([("Cookie", "s_ecid=%s" % SHA256_TOKEN)])
    entry = _entry("https://metrics.shop.example/b/ss?ev=PageView",
                   headers=headers)
    events = detector.detect_entry(entry)
    assert events
    assert events[0].receiver == "omtrdc.net"
    assert events[0].cloaked
    assert events[0].channel == CHANNEL_COOKIE


def test_uncloaked_first_party_subdomain_ignored():
    zone = Zone()
    zone.add_a("cdn.shop.example")
    detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                            resolver=Resolver(zone))
    entry = _entry("https://cdn.shop.example/a?email=%s" % EMAIL)
    assert detector.detect_entry(entry) == []


def test_scan_first_party_mode():
    detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                            scan_first_party=True)
    entry = _entry("https://www.shop.example/submit?email=%s" % EMAIL)
    assert detector.detect_entry(entry)


def test_event_deduplication_within_request(plain_detector):
    # The same token twice in one parameter produces one event.
    url = "https://t.example/p?uid=%s%s" % (SHA256_TOKEN, SHA256_TOKEN)
    events = plain_detector.detect_entry(_entry(url))
    assert len([e for e in events if e.parameter == "uid"]) == 1


def test_multi_layer_obfuscation_detected(plain_detector):
    token = hashes.apply_chain(EMAIL, ["base64", "sha1", "sha256"])
    events = plain_detector.detect_entry(
        _entry("https://t.example/p?x=%s" % token))
    assert any(e.chain == ("base64", "sha1", "sha256") for e in events)


def test_uppercase_hex_detected(plain_detector):
    events = plain_detector.detect_entry(
        _entry("https://t.example/p?x=%s" % SHA256_TOKEN.upper()))
    assert any(e.chain == ("sha256",) for e in events)


def test_leaking_requests_counts_entries(plain_detector):
    log = CaptureLog()
    log.record(_entry("https://t.example/p?uid=%s" % SHA256_TOKEN))
    log.record(_entry("https://t.example/p?uid=clean000000"))
    assert len(leaking_requests(log, plain_detector)) == 1
