"""Structural tests for the table-substituted algorithms (MD2, Snefru).

Their published constant tables are unavailable offline (see the module
docstrings), so these tests pin the *structure*: digest sizes, padding and
checksum behaviour, determinism, and avalanche — plus stability of the
derived tables across calls (the property leak detection depends on).
"""

import pytest

from repro.hashes import md2, snefru


def test_md2_digest_size():
    assert len(md2.md2_digest(b"")) == 16


def test_md2_flagged_unfaithful():
    assert md2.FAITHFUL is False


def test_md2_deterministic_across_calls():
    assert md2.md2_hexdigest(b"foo@mydom.com") == \
        md2.md2_hexdigest(b"foo@mydom.com")


def test_md2_substitution_table_is_permutation():
    assert sorted(md2._S) == list(range(256))


def test_md2_checksum_block_matters():
    # Two messages equal after padding differ via the trailing checksum:
    # with RFC 1319 padding, b"" pads to 16 x \x10; crafting that exact
    # block as input must still yield a different digest because the
    # appended checksum differs.
    padded_lookalike = bytes([16] * 16)
    assert md2.md2_digest(b"") != md2.md2_digest(padded_lookalike)


def test_md2_avalanche():
    a = md2.md2_digest(b"foo@mydom.com")
    b = md2.md2_digest(b"goo@mydom.com")
    differing = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
    assert differing > 20


@pytest.mark.parametrize("length", [0, 1, 15, 16, 17, 31, 32, 100])
def test_md2_all_lengths(length):
    assert len(md2.md2_digest(b"a" * length)) == 16


def test_snefru_digest_sizes():
    assert len(snefru.snefru128_digest(b"")) == 16
    assert len(snefru.snefru256_digest(b"")) == 32


def test_snefru_flagged_unfaithful():
    assert snefru.FAITHFUL is False


def test_snefru_sboxes_stable():
    boxes_a = snefru._build_sboxes()
    assert boxes_a == snefru._SBOXES
    assert len(snefru._SBOXES) == 16
    assert all(len(box) == 256 for box in snefru._SBOXES)


def test_snefru_variants_differ():
    assert snefru.snefru128_hexdigest(b"abc") != \
        snefru.snefru256_hexdigest(b"abc")[:32]


def test_snefru_length_encoded():
    # Trailing zero bytes must change the digest (bit length is hashed).
    assert snefru.snefru128_digest(b"abc") != \
        snefru.snefru128_digest(b"abc\x00")


def test_snefru_avalanche():
    a = snefru.snefru256_digest(b"foo@mydom.com")
    b = snefru.snefru256_digest(b"foo@mydom.co m")
    differing = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
    assert differing > 50


@pytest.mark.parametrize("length", [0, 1, 47, 48, 49, 95, 96, 200])
def test_snefru_chunk_boundaries(length):
    assert len(snefru.snefru128_digest(b"p" * length)) == 16
    assert len(snefru.snefru256_digest(b"p" * length)) == 32
