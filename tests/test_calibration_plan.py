"""Structural verification of the calibrated assignment plan."""

import pytest

from repro.datasets import paper
from repro.websim.calibration import (
    ADOBE_COOKIE_SLOTS,
    N_SENDERS,
    REFERER_SLOTS,
    SLOT_LOCCITANE,
    build_plan,
    verify_plan,
)
from repro.websim.trackers import _FILLER_DOMAINS


@pytest.fixture(scope="module")
def plan():
    return build_plan(_FILLER_DOMAINS)


def test_every_pinned_target_exact(plan):
    report = verify_plan(plan)
    mismatches = {key: value for key, value in report.items()
                  if value[0] != value[1]}
    assert mismatches == {}


def test_all_slots_used(plan):
    used = plan.slots_used() | set(REFERER_SLOTS)
    assert used == set(range(N_SENDERS))


def test_loccitane_is_unique_maximum(plan):
    degrees = {}
    for edge in plan.edges:
        degrees.setdefault(edge.sender_slot, set()).add(edge.receiver)
    ranked = sorted(degrees.items(), key=lambda item: -len(item[1]))
    assert ranked[0][0] == SLOT_LOCCITANE
    assert len(ranked[0][1]) == paper.MAX_RECEIVERS_PER_SENDER
    assert len(ranked[1][1]) < paper.MAX_RECEIVERS_PER_SENDER


def test_adobe_cookie_slots_have_cookie_channel(plan):
    for slot in ADOBE_COOKIE_SLOTS:
        edges = [e for e in plan.edges_of_slot(slot)
                 if e.receiver == "omtrdc.net"]
        assert edges and all("cookie" in e.channels for e in edges)


def test_mean_receivers_close_to_paper(plan):
    total_edges = len(plan.edges) + 7  # + referer relationships
    mean = total_edges / N_SENDERS
    assert abs(mean - paper.MEAN_RECEIVERS_PER_SENDER) < 0.1


def test_senders_with_3plus_near_paper(plan):
    degrees = {}
    for edge in plan.edges:
        degrees.setdefault(edge.sender_slot, set()).add(edge.receiver)
    with_3plus = sum(1 for receivers in degrees.values()
                     if len(receivers) >= 3)
    pct = 100.0 * with_3plus / N_SENDERS
    assert abs(pct - paper.PCT_SENDERS_WITH_3PLUS_RECEIVERS) < 5.0


def test_plan_deterministic():
    plan_a = build_plan(_FILLER_DOMAINS)
    plan_b = build_plan(_FILLER_DOMAINS)
    assert plan_a.edges == plan_b.edges


def test_brave_missed_receivers_have_distinct_senders(plan):
    slots = set()
    for domain in paper.BRAVE_MISSED:
        for edge in plan.edges_of_receiver(domain):
            slots.add(edge.sender_slot)
    # 9 distinct senders survive Brave (93.1% reduction from 130).
    assert len(slots) == 9
