"""Internal consistency of the recorded paper constants."""

from repro.datasets import paper


def test_population_accounting():
    assert (paper.SUCCESSFUL_FLOWS + paper.UNREACHABLE_SITES
            + paper.NO_AUTH_SITES + paper.SIGNUP_BLOCKED_SITES
            == paper.TRANCO_SHOPPING_SITES)
    assert (paper.SIGNUP_BLOCKED_PHONE + paper.SIGNUP_BLOCKED_IDENTITY
            + paper.SIGNUP_BLOCKED_REGION == paper.SIGNUP_BLOCKED_SITES)


def test_leak_rate_matches_counts():
    rate = 100.0 * paper.LEAKING_SENDERS / paper.SUCCESSFUL_FLOWS
    assert abs(rate - paper.PCT_SITES_LEAKING) < 0.1


def test_table2_has_twenty_providers():
    assert len(paper.TABLE2) == paper.PERSISTENT_TRACKING_PROVIDERS


def test_table2_sender_counts_positive():
    for receiver in paper.TABLE2:
        assert paper.table2_sender_count(receiver) > 0


def test_facebook_share():
    share = 100.0 * paper.FACEBOOK_SENDERS / paper.LEAKING_SENDERS
    assert abs(share - paper.FACEBOOK_SENDER_PCT) < 0.1


def test_table3_sums_to_senders():
    assert sum(paper.TABLE3.values()) == paper.LEAKING_SENDERS


def test_brave_reduction_consistent():
    remaining = round(paper.LEAKING_SENDERS
                      * (1 - paper.BRAVE_SENDER_REDUCTION_PCT / 100.0))
    assert remaining == 9
    assert len(paper.BRAVE_MISSED) == paper.BRAVE_REMAINING_RECEIVERS


def test_blocklist_missed_are_table2_providers():
    for domain in paper.BLOCKLIST_MISSED_PROVIDERS:
        assert domain in paper.TABLE2


def test_cross_site_funnel_ordering():
    assert (paper.PERSISTENT_TRACKING_PROVIDERS
            <= paper.CROSS_SITE_ID_RECEIVERS
            <= paper.LEAK_RECEIVERS - paper.SINGLE_APPEARANCE_RECEIVERS)


def test_table4_percentages_match_counts():
    for section, total in ((paper.TABLE4_SENDERS, paper.LEAKING_SENDERS),
                           (paper.TABLE4_RECEIVERS, paper.LEAK_RECEIVERS)):
        for rows in section.values():
            blocked, pct = rows["total"]
            assert abs(100.0 * blocked / total - pct) < 0.1
