"""§7 countermeasures: browser profiles (7.1) and blocklists (7.2)."""

import pytest

from repro.blocklist import BlocklistEvaluator
from repro.browser import brave, chrome, safari, firefox_etp
from repro.datasets import paper
from repro.protection import BrowserCountermeasureEvaluator


@pytest.fixture(scope="module")
def browser_study(study_spec):
    evaluator = BrowserCountermeasureEvaluator(
        study_spec.population, study_spec.leaking_domains)
    catalog = study_spec.catalog
    return evaluator.run(profiles=[chrome(), safari(),
                                   firefox_etp(catalog), brave(catalog)])


@pytest.fixture(scope="module")
def table4(crawl, detector):
    return BlocklistEvaluator(detector).evaluate(crawl.log)


# -- §7.1 -------------------------------------------------------------------

def test_baseline_matches_main_crawl(browser_study):
    assert browser_study.baseline.senders == paper.LEAKING_SENDERS
    assert browser_study.baseline.receivers == paper.LEAK_RECEIVERS


def test_non_brave_browsers_do_not_reduce_leakage(browser_study):
    for name in ("chrome", "safari", "firefox-etp"):
        result = browser_study.results[name]
        assert result.senders == paper.LEAKING_SENDERS, name
        assert result.receivers == paper.LEAK_RECEIVERS, name
        assert result.failed_signups == (), name


def test_brave_reduction_percentages(browser_study):
    reductions = browser_study.reductions()
    sender_pct, receiver_pct = reductions["brave"]
    assert abs(sender_pct - paper.BRAVE_SENDER_REDUCTION_PCT) < 0.5
    assert abs(receiver_pct - paper.BRAVE_RECEIVER_REDUCTION_PCT) < 0.5


def test_brave_missed_receivers_match_footnote(browser_study):
    remaining = set(browser_study.remaining_receivers["brave"])
    assert remaining == set(paper.BRAVE_MISSED)
    assert browser_study.results["brave"].receivers == \
        paper.BRAVE_REMAINING_RECEIVERS


def test_brave_captcha_failure_site(browser_study):
    assert browser_study.results["brave"].failed_signups == \
        (paper.BRAVE_CAPTCHA_FAILURE_SITE,)


# -- §7.2 -------------------------------------------------------------------

def test_cookie_channel_fully_blocked(table4):
    for list_name in ("easyprivacy", "combined"):
        assert table4.senders[list_name]["cookie"].pct == 100.0
        assert table4.receivers[list_name]["cookie"].pct == 100.0


def test_easylist_barely_touches_leakage(table4):
    assert table4.receivers["easylist"]["total"].blocked <= 10
    assert table4.senders["easylist"]["total"].blocked <= 3


def test_easyprivacy_dominates_easylist(table4):
    ep = table4.senders["easyprivacy"]["total"].blocked
    el = table4.senders["easylist"]["total"].blocked
    assert ep > 10 * max(el, 1)


def test_combined_coverage_shape(table4):
    combined_senders = table4.senders["combined"]["total"]
    combined_receivers = table4.receivers["combined"]["total"]
    # Paper: 102/78.5% senders and 72/72% receivers.
    assert abs(combined_senders.pct - 78.5) < 8.0
    assert abs(combined_receivers.pct - 72.0) < 8.0


def test_referer_receiver_split(table4):
    assert table4.receivers["easylist"]["referer"].blocked == 1
    assert table4.receivers["easyprivacy"]["referer"].blocked == 6
    assert table4.receivers["combined"]["referer"].blocked == 7


def test_unlisted_tracking_providers_survive(crawl, detector, table4):
    evaluator = BlocklistEvaluator(detector)
    rules = evaluator.rule_sets["combined"]
    survivors = []
    for entry in crawl.log:
        if entry.was_blocked:
            continue
        for event in detector.detect_entry(entry):
            if event.receiver in paper.BLOCKLIST_MISSED_PROVIDERS and \
                    not evaluator.entry_blocked(entry, rules):
                survivors.append(event.receiver)
    assert set(survivors) == set(paper.BLOCKLIST_MISSED_PROVIDERS)


def test_combined_never_below_individual_lists(table4):
    for row in ("referer", "uri", "payload", "cookie", "total"):
        for section in (table4.senders, table4.receivers):
            assert section["combined"][row].blocked >= \
                section["easyprivacy"][row].blocked
            assert section["combined"][row].blocked >= \
                section["easylist"][row].blocked
