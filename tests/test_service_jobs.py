"""Units for the service layer's data plane: specs, runs, and the store.

No HTTP here — :mod:`tests.test_service_http` covers the wire.  These
tests pin the contracts the endpoints are built on: spec parsing and
validation, result-document shape, the fingerprint parity between a
job run and ``Study.crawl()`` under the equivalent config, and the
store's crash-recovery semantics (terminal loads get a closed replay
log; resumable partials get a fresh, open one).
"""

import json
import os

import pytest

from repro.core.pipeline import Study
from repro.obs import Recorder
from repro.service import (
    STATE_COMPLETE,
    STATE_PARTIAL,
    STATE_QUEUED,
    STATE_RUNNING,
    JobRun,
    JobSpec,
    JobStore,
    SpecError,
)
from repro.service.store import PROGRESS_NAME, RESULT_NAME, STATUS_NAME


# -- spec parsing and validation -----------------------------------------


def test_spec_roundtrips_through_as_dict():
    spec = JobSpec(seed=9, sites=10, trackers=5, workers=2, label="t")
    assert JobSpec.from_dict(spec.as_dict()) == spec


def test_spec_accepts_minimal_document():
    spec = JobSpec.from_dict({})
    assert spec.kind == "study"
    assert spec.population == "generated"


def test_spec_rejects_unknown_keys():
    with pytest.raises(SpecError, match="unknown"):
        JobSpec.from_dict({"sties": 10})


def test_spec_rejects_wrong_types():
    with pytest.raises(SpecError):
        JobSpec.from_dict({"sites": "ten"})
    with pytest.raises(SpecError):
        JobSpec.from_dict({"sites": True})  # bool is not an int here
    with pytest.raises(SpecError):
        JobSpec.from_dict(["not", "a", "mapping"])


def test_spec_rejects_wrong_schema_version():
    with pytest.raises(SpecError, match="schema"):
        JobSpec.from_dict({"schema": 99})


def test_spec_coerces_int_probability_to_float():
    spec = JobSpec.from_dict({"leak_probability": 1})
    assert spec.leak_probability == 1.0


@pytest.mark.parametrize("document", [
    {"kind": "bake"},
    {"population": "martian"},
    {"sites": 0},
    {"workers": 0},
    {"leak_probability": 1.5},
    {"overlap": -0.1},
    {"contributors": 0},
])
def test_spec_validation_rejects_out_of_range(document):
    with pytest.raises(SpecError):
        JobSpec.from_dict(document)


def test_spec_describe_is_human_readable():
    text = JobSpec(seed=3, sites=7).describe()
    assert "seed=3" in text and "7" in text


# -- execution: the service path equals the CLI path ---------------------

TINY = JobSpec(seed=7, sites=6, trackers=3, workers=2)


@pytest.fixture(scope="module")
def tiny_outcome():
    return JobRun(TINY).execute()


def test_job_run_completes_with_result_document(tiny_outcome):
    assert tiny_outcome.state == STATE_COMPLETE
    assert tiny_outcome.error == ""
    document = tiny_outcome.result
    assert document["kind"] == "study"
    assert document["fingerprint"] == tiny_outcome.fingerprint
    assert document["spec"] == TINY.as_dict()
    table2 = document["table2"]
    assert set(table2) >= {"cross_site_receivers", "persistent_receivers",
                           "rows"}
    for row in table2["rows"]:
        assert set(row) == {"receiver", "senders", "methods", "encoding",
                            "parameters"}


def test_job_run_records_a_trace(tiny_outcome):
    assert tiny_outcome.recorder is not None
    assert tiny_outcome.recorder.span_count() > 0


def test_fingerprint_parity_with_cli_study_crawl(tiny_outcome):
    """The acceptance criterion: a served job's fingerprint is
    bit-identical to the same spec run via ``Study.crawl()``."""
    recorder = Recorder()
    pspec = TINY.population_spec()
    study = Study(pspec.build(), config=TINY.study_config(recorder=recorder),
                  population_spec=pspec)
    result = study.crawl()
    assert result.dataset.fingerprint() == tiny_outcome.fingerprint


def test_job_run_failure_is_captured_not_raised(monkeypatch):
    spec = JobSpec(seed=1, sites=4)
    run = JobRun(spec)
    monkeypatch.setattr(run, "_execute_study",
                        lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    outcome = run.execute()
    assert outcome.state == "failed"
    assert "RuntimeError" in outcome.error and "boom" in outcome.error


def test_crowd_job_produces_crowd_document():
    spec = JobSpec(kind="crowd", seed=5, sites=8, trackers=3,
                   contributors=2, overlap=0.5)
    outcome = JobRun(spec).execute()
    assert outcome.state == STATE_COMPLETE
    document = outcome.result
    assert document["kind"] == "crowd"
    assert len(document["contributors"]) == 2
    assert "confirmed_receivers" in document
    # PII stays local: the document never carries personas.
    assert "persona" not in json.dumps(document)


# -- the store -----------------------------------------------------------


def test_store_assigns_sequential_ids(tmp_path):
    store = JobStore(str(tmp_path))
    first = store.create(TINY)
    second = store.create(TINY)
    assert (first.id, second.id) == ("job-000001", "job-000002")
    assert os.path.exists(first.spec_path)
    assert os.path.exists(os.path.join(first.directory, STATUS_NAME))


def test_store_reloads_spec_and_status_from_disk(tmp_path):
    JobStore(str(tmp_path)).create(TINY)
    fresh = JobStore(str(tmp_path))
    record = fresh.get("job-000001")
    assert record.spec == TINY
    assert record.state == STATE_QUEUED
    assert fresh.get("job-999999") is None


def test_store_list_orders_by_id(tmp_path):
    store = JobStore(str(tmp_path))
    for _ in range(3):
        store.create(TINY)
    assert [r.id for r in store.list()] == \
        ["job-000001", "job-000002", "job-000003"]


def test_terminal_load_replays_a_closed_log(tmp_path):
    """Reloading a finished job yields its progress events plus a
    synthesized ``end`` event, on an already-closed log — an SSE
    client connecting later replays history and the stream ends."""
    store = JobStore(str(tmp_path))
    record = store.create(TINY)
    with open(record.progress_path, "w") as fh:
        fh.write(json.dumps({"type": "heartbeat", "shard": 0,
                             "crawled": 1, "total": 6}) + "\n")
    record.state = STATE_COMPLETE
    record.fingerprint = "abc123"
    store.write_status(record)

    fresh = JobStore(str(tmp_path))
    loaded = fresh.get(record.id)
    events, closed = loaded.log.events_after(0)
    assert closed and loaded.log.closed
    assert events[0]["type"] == "heartbeat"
    assert events[-1]["type"] == "end"
    assert events[-1]["state"] == STATE_COMPLETE
    assert events[-1]["fingerprint"] == "abc123"


def test_recover_requeues_interrupted_and_resumable_jobs(tmp_path):
    store = JobStore(str(tmp_path))
    crashed = store.create(TINY)           # died mid-run
    crashed.state = STATE_RUNNING
    store.write_status(crashed)
    partial = store.create(TINY)           # drained with checkpoints
    partial.state = STATE_PARTIAL
    partial.resumable = True
    store.write_status(partial)
    finished = store.create(TINY)          # stays terminal
    finished.state = STATE_COMPLETE
    store.write_status(finished)

    fresh = JobStore(str(tmp_path))
    recovered = fresh.recover()
    assert sorted(r.id for r in recovered) == \
        [crashed.id, partial.id]
    for record in recovered:
        assert record.state == STATE_QUEUED
        assert record.recovered
        assert not record.log.closed, \
            "a requeued job needs an open log for its next run"
    assert fresh.get(finished.id).state == STATE_COMPLETE


def test_unresumable_partial_is_not_requeued(tmp_path):
    store = JobStore(str(tmp_path))
    record = store.create(TINY)
    record.state = STATE_PARTIAL
    record.resumable = False
    store.write_status(record)
    assert JobStore(str(tmp_path)).recover() == []


def test_store_result_roundtrip(tmp_path):
    store = JobStore(str(tmp_path))
    record = store.create(TINY)
    store.write_result(record, {"fingerprint": "ff", "kind": "study"})
    assert os.path.exists(os.path.join(record.directory, RESULT_NAME))
    assert store.read_result(record)["fingerprint"] == "ff"
    assert PROGRESS_NAME == "progress.jsonl"  # the documented layout
