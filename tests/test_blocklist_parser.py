"""ABP filter parsing and pattern compilation."""


from repro.blocklist import (
            compile_pattern,
    parse_filter,
    parse_filter_list,
)


def test_comments_and_headers_skipped():
    assert parse_filter("! a comment") is None
    assert parse_filter("[Adblock Plus 2.0]") is None
    assert parse_filter("") is None


def test_element_hiding_skipped():
    assert parse_filter("example.com##.ad-banner") is None
    assert parse_filter("example.com#@#.ad-banner") is None


def test_plain_substring_rule():
    rule = parse_filter("/banner/ads/")
    assert not rule.is_exception
    assert rule.matches_url("https://x.com/banner/ads/1.gif")
    assert not rule.matches_url("https://x.com/content/1.gif")


def test_domain_anchor():
    rule = parse_filter("||tracker.net^")
    assert rule.matches_url("https://tracker.net/p")
    assert rule.matches_url("https://sub.tracker.net/p")
    assert rule.matches_url("http://tracker.net:8080/")
    assert not rule.matches_url("https://nottracker.net/p")
    assert not rule.matches_url("https://evil.com/?ref=tracker.net")


def test_separator_semantics():
    rule = parse_filter("/b/ss^")
    assert rule.matches_url("https://m.shop.com/b/ss?ev=1")
    assert rule.matches_url("https://m.shop.com/b/ss/extra")
    assert rule.matches_url("https://m.shop.com/b/ss")  # end of address
    assert not rule.matches_url("https://m.shop.com/b/sss")


def test_start_and_end_anchors():
    rule = parse_filter("|https://exact.net/path|")
    assert rule.matches_url("https://exact.net/path")
    assert not rule.matches_url("https://exact.net/path/more")
    assert not rule.matches_url("https://pre.fix/https://exact.net/path")


def test_wildcard():
    rule = parse_filter("||ads.net/pixel*id=")
    assert rule.matches_url("https://ads.net/pixel?x=1&id=9")
    assert not rule.matches_url("https://ads.net/pixel")


def test_case_insensitive_by_default():
    rule = parse_filter("/TrackMe/")
    assert rule.matches_url("https://x.com/trackme/1")
    strict = parse_filter("/TrackMe/$match-case")
    assert not strict.matches_url("https://x.com/trackme/1")
    assert strict.matches_url("https://x.com/TrackMe/1")


def test_exception_rule():
    rule = parse_filter("@@||cdn.net^$script")
    assert rule.is_exception
    assert rule.resource_types == frozenset({"script"})


def test_resource_type_options():
    rule = parse_filter("||t.net^$script,image")
    assert rule.applies_to_type("script")
    assert rule.applies_to_type("image")
    assert not rule.applies_to_type("xmlhttprequest")


def test_inverse_resource_type():
    rule = parse_filter("||t.net^$~image")
    assert rule.applies_to_type("script")
    assert not rule.applies_to_type("image")


def test_party_options():
    third = parse_filter("||t.net^$third-party")
    assert third.applies_to_party(True)
    assert not third.applies_to_party(False)
    first = parse_filter("||t.net^$~third-party")
    assert first.applies_to_party(False)
    assert not first.applies_to_party(True)
    either = parse_filter("||t.net^")
    assert either.applies_to_party(True) and either.applies_to_party(False)


def test_domain_option():
    rule = parse_filter("||t.net^$domain=shop.com|~sub.shop.com")
    assert rule.applies_to_domain("shop.com")
    assert rule.applies_to_domain("www.shop.com")
    assert not rule.applies_to_domain("sub.shop.com")
    assert not rule.applies_to_domain("other.com")


def test_unsupported_option_drops_rule():
    assert parse_filter("||t.net^$csp=script-src 'none'") is None
    assert parse_filter("||t.net^$redirect=noop.js") is None


def test_dollar_in_path_not_treated_as_options():
    rule = parse_filter("/path/$weird/resource")
    assert rule is not None
    assert rule.matches_url("https://x.com/path/$weird/resource")


def test_parse_filter_list():
    text = "\n".join([
        "[Adblock Plus 2.0]",
        "! comment",
        "||a.net^",
        "@@||b.net^$script",
        "c.com##.ad",
    ])
    filters = parse_filter_list(text)
    assert len(filters) == 2
    assert sum(1 for f in filters if f.is_exception) == 1


def test_compile_pattern_domain_anchor_regex():
    regex = compile_pattern("||t.net^", match_case=False)
    assert regex.search("https://t.net/")
    assert not regex.search("https://x.com/t.net/")
