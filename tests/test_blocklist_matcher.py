"""Rule-set matching: blocking, exceptions, context options, bundled lists."""


from repro.blocklist import (
    RequestContext,
    RuleSet,
    UNLISTED_PROVIDERS,
    easylist_covered_domains,
    easylist_text,
    easyprivacy_covered_domains,
    easyprivacy_text,
)


def _rules(*lines):
    return RuleSet.from_text("\n".join(lines))


def test_block_and_miss():
    rules = _rules("||tracker.net^$third-party")
    assert rules.should_block("https://tracker.net/p", page_domain="shop.com")
    assert not rules.should_block("https://other.net/p",
                                  page_domain="shop.com")


def test_exception_overrides_block():
    rules = _rules("||cdn.net^", "@@||cdn.net^$script")
    blocked_image = rules.match(RequestContext(
        url="https://cdn.net/x.gif", resource_type="image"))
    assert blocked_image.blocked
    allowed_script = rules.match(RequestContext(
        url="https://cdn.net/x.js", resource_type="script"))
    assert not allowed_script.blocked
    assert allowed_script.exception_filter is not None


def test_third_party_option_respects_context():
    rules = _rules("||shop.com^$third-party")
    own_request = RequestContext(url="https://shop.com/a",
                                 page_domain="shop.com",
                                 is_third_party=False)
    assert not rules.match(own_request).blocked
    embedded = RequestContext(url="https://shop.com/a",
                              page_domain="other.com",
                              is_third_party=True)
    assert rules.match(embedded).blocked


def test_domain_option_scoping():
    rules = _rules("||t.net^$domain=shop.com")
    on_shop = RequestContext(url="https://t.net/p", page_domain="shop.com")
    on_other = RequestContext(url="https://t.net/p", page_domain="x.com")
    assert rules.match(on_shop).blocked
    assert not rules.match(on_other).blocked


def test_resource_type_scoping():
    rules = _rules("||t.net^$image")
    image = RequestContext(url="https://t.net/p.gif",
                           resource_type="image")
    script = RequestContext(url="https://t.net/t.js",
                            resource_type="script")
    assert rules.match(image).blocked
    assert not rules.match(script).blocked


def test_union_combines_lists():
    easylist = _rules("||ads.net^")
    easyprivacy = _rules("||trk.net^")
    combined = RuleSet.union((easylist, easyprivacy), name="combined")
    assert combined.should_block("https://ads.net/p", is_third_party=True)
    assert combined.should_block("https://trk.net/p", is_third_party=True)
    assert len(combined) == 2


def test_should_block_derives_party_from_page_domain():
    rules = _rules("||shop.com^$third-party")
    assert not rules.should_block("https://cdn.shop.com/x",
                                  page_domain="shop.com")
    assert rules.should_block("https://cdn.shop.com/x",
                              page_domain="other.com")


def test_path_rule_catches_cloaked_host():
    # The EasyPrivacy Adobe strategy: path match, no party restriction.
    rules = _rules("/b/ss^")
    cloaked = RequestContext(url="https://metrics.shop.com/b/ss?ev=1",
                             page_domain="shop.com", is_third_party=False)
    assert rules.match(cloaked).blocked


# -- bundled snapshots ---------------------------------------------------------

def test_bundled_lists_parse():
    easylist = RuleSet.from_text(easylist_text())
    easyprivacy = RuleSet.from_text(easyprivacy_text())
    assert len(easylist) > 5
    assert len(easyprivacy) > 30


def test_easyprivacy_blocks_facebook_pixel():
    rules = RuleSet.from_text(easyprivacy_text())
    assert rules.should_block(
        "https://www.facebook.com/tr?ev=identify&udff%5Bem%5D=abc",
        resource_type="image", page_domain="shop.com",
        is_third_party=True)


def test_easyprivacy_blocks_cloaked_adobe_beacon():
    rules = RuleSet.from_text(easyprivacy_text())
    assert rules.should_block(
        "https://metrics.loccitane.com/b/ss?ev=PageView",
        resource_type="image", page_domain="loccitane.com",
        is_third_party=False)


def test_unlisted_providers_not_blocked():
    combined = RuleSet.union((RuleSet.from_text(easylist_text()),
                              RuleSet.from_text(easyprivacy_text())))
    for domain in UNLISTED_PROVIDERS:
        url = "https://api.%s/v1/track?uid=abc" % domain
        assert not combined.should_block(url, page_domain="shop.com",
                                         is_third_party=True), domain


def test_easylist_scope_is_ads_only():
    easylist = RuleSet.from_text(easylist_text())
    assert easylist.should_block("https://stats.g.doubleclick.net/j/collect",
                                 page_domain="shop.com",
                                 is_third_party=True)
    assert not easylist.should_block("https://www.facebook.com/tr?x=1",
                                     page_domain="shop.com",
                                     is_third_party=True)


def test_coverage_sets_disjoint_from_unlisted():
    covered = set(easylist_covered_domains()) | \
        set(easyprivacy_covered_domains())
    assert not covered.intersection(UNLISTED_PROVIDERS)
