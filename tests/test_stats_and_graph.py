"""Bootstrap statistics and tracker-graph analytics."""

import pytest

from repro.core import LeakAnalysis, LeakEvent
from repro.core.stats import (
    BootstrapResult,
    bootstrap_ci,
    headline_intervals,
    sender_degree_sample,
)
from repro.tracking import (
    build_leak_graph,
    coverage_curve,
    exposure_summary,
    receiver_cooccurrence,
    receiver_reach,
)


def _event(sender, receiver, **kwargs):
    defaults = dict(request_host="x." + receiver, channel="uri",
                    location="query", pii_type="email", chain=("sha256",),
                    parameter="uid", stage="signup",
                    url="https://x.%s/p" % receiver)
    defaults.update(kwargs)
    return LeakEvent(sender=sender, receiver=receiver, **defaults)


@pytest.fixture(scope="module")
def small_analysis():
    events = [
        _event("s1.example", "big.example"),
        _event("s2.example", "big.example"),
        _event("s3.example", "big.example"),
        _event("s1.example", "mid.example"),
        _event("s2.example", "mid.example"),
        _event("s3.example", "solo.example"),
    ]
    return LeakAnalysis(events)


# -- bootstrap ---------------------------------------------------------------

def _mean(values):
    return sum(values) / len(values)


def test_bootstrap_deterministic():
    values = [1, 2, 3, 4, 5, 6]
    first = bootstrap_ci(values, _mean, seed=7)
    second = bootstrap_ci(values, _mean, seed=7)
    assert first == second


def test_bootstrap_interval_contains_estimate():
    values = [1, 2, 3, 4, 5, 6, 7, 8]
    result = bootstrap_ci(values, _mean)
    assert result.low <= result.estimate <= result.high
    assert result.samples == 8


def test_bootstrap_constant_sample_degenerate():
    result = bootstrap_ci([5, 5, 5, 5], _mean)
    assert result.low == result.high == result.estimate == 5.0


def test_bootstrap_interval_narrows_with_sample_size():
    small = bootstrap_ci([1, 9] * 5, _mean, seed=1)
    large = bootstrap_ci([1, 9] * 100, _mean, seed=1)
    assert (large.high - large.low) < (small.high - small.low)


def test_bootstrap_validation():
    with pytest.raises(ValueError):
        bootstrap_ci([], _mean)
    with pytest.raises(ValueError):
        bootstrap_ci([1], _mean, confidence=1.5)


def test_bootstrap_contains_helper():
    result = BootstrapResult(estimate=2.0, low=1.5, high=2.5,
                             confidence=0.95, samples=10)
    assert result.contains(2.0) and result.contains(1.5)
    assert not result.contains(3.0)
    assert "95% CI" in str(result)


def test_sender_degree_sample(small_analysis):
    assert sorted(sender_degree_sample(small_analysis)) == [2, 2, 2]


def test_headline_intervals(small_analysis):
    intervals = headline_intervals(small_analysis, n_resamples=200)
    assert intervals["mean_receivers_per_sender"].estimate == 2.0
    assert 0 <= intervals["pct_senders_with_3plus"].estimate <= 100


def test_headline_intervals_on_calibrated_crawl(analysis):
    from repro.datasets import paper
    intervals = headline_intervals(analysis, n_resamples=500)
    mean_ci = intervals["mean_receivers_per_sender"]
    # The paper's value lies within the measured bootstrap interval.
    assert mean_ci.contains(paper.MEAN_RECEIVERS_PER_SENDER)


# -- graph --------------------------------------------------------------------

def test_graph_structure(small_analysis):
    graph = build_leak_graph(small_analysis)
    assert graph.number_of_nodes() == 6
    assert graph.number_of_edges() == 6
    assert graph.nodes["s1.example"]["kind"] == "sender"
    assert graph.nodes["big.example"]["kind"] == "receiver"
    assert graph.edges["s1.example", "big.example"]["channels"] == ("uri",)


def test_receiver_reach(small_analysis):
    reach = receiver_reach(build_leak_graph(small_analysis))
    assert reach == {"big.example": 3, "mid.example": 2,
                     "solo.example": 1}


def test_coverage_curve_monotone(small_analysis):
    curve = coverage_curve(build_leak_graph(small_analysis))
    assert curve[0][0] == 1
    percentages = [pct for _, pct in curve]
    assert percentages == sorted(percentages)
    assert percentages[-1] == 100.0


def test_cooccurrence(small_analysis):
    pairs = receiver_cooccurrence(build_leak_graph(small_analysis),
                                  min_shared=2)
    assert pairs == [("big.example", "mid.example", 2)]


def test_exposure_summary(small_analysis):
    events = small_analysis.events + [_event("s1.example", "facebook.com")]
    summary = exposure_summary(LeakAnalysis(events))
    assert summary.flows_with_leakage == 3
    assert summary.max_receivers_per_flow == 3
    assert summary.pct_flows_feeding_facebook == pytest.approx(100 / 3)


def test_exposure_summary_empty():
    summary = exposure_summary(LeakAnalysis([]))
    assert summary.flows_with_leakage == 0
    assert summary.mean_receivers_per_flow == 0.0


def test_coverage_curve_on_calibrated_crawl(analysis):
    curve = coverage_curve(build_leak_graph(analysis))
    assert len(curve) == 100
    # Blocking every receiver covers every sender.
    assert curve[-1][1] == 100.0
    # The ecosystem is concentrated: the top 20 receivers already fully
    # cover a majority-sized share of senders... measured, not assumed:
    top20 = dict(curve)[20]
    assert top20 > 25.0
