"""Pickle-safety rules: lambdas, local classes, handles in state."""

import textwrap

from repro.statan import analyze_source, default_rules

IN_SCOPE = "repro.crawler.fixture"


def _fired(source, module=IN_SCOPE):
    findings = analyze_source(textwrap.dedent(source), default_rules(),
                              module=module)
    return [finding.rule for finding in findings]


# -- PKL301: lambdas in state ------------------------------------------------

def test_lambda_on_self_flagged():
    assert "PKL301" in _fired("""
        class ShardJob:
            def __init__(self):
                self.key = lambda item: item.index
    """)


def test_class_level_lambda_flagged():
    assert "PKL301" in _fired("""
        class ShardJob:
            sort_key = lambda item: item.index
    """)


def test_dataclass_lambda_default_flagged():
    assert "PKL301" in _fired("""
        from dataclasses import dataclass
        @dataclass
        class ShardJob:
            key: object = lambda item: item.index
    """)


def test_default_factory_lambda_allowed():
    # default_factory runs at construction; the lambda lives on the
    # class Field object, never in instance state.
    assert _fired("""
        from dataclasses import dataclass, field
        @dataclass
        class ShardJob:
            domains: list = field(default_factory=lambda: [])
    """) == []


def test_local_sort_lambda_allowed():
    assert _fired("""
        def merge(results):
            return sorted(results, key=lambda r: r.index)
    """) == []


# -- PKL302: local classes ---------------------------------------------------

def test_local_class_flagged():
    assert "PKL302" in _fired("""
        def build_job():
            class Job:
                pass
            return Job()
    """)


def test_module_level_class_allowed():
    assert _fired("""
        class Job:
            pass
        def build_job():
            return Job()
    """) == []


# -- PKL303: handles in state ------------------------------------------------

def test_open_handle_on_self_flagged():
    assert "PKL303" in _fired("""
        class Checkpointer:
            def __init__(self, path):
                self.handle = open(path, "wb")
    """)


def test_lock_on_self_flagged():
    assert "PKL303" in _fired("""
        import threading
        class Coordinator:
            def __init__(self):
                self.lock = threading.Lock()
    """)


def test_generator_on_self_flagged():
    assert "PKL303" in _fired("""
        class Feeder:
            def __init__(self, items):
                self.stream = (item for item in items)
    """)


def test_with_open_not_stored_allowed():
    assert _fired("""
        class Checkpointer:
            def save(self, path, data):
                with open(path, "wb") as handle:
                    handle.write(data)
    """) == []


# -- scoping -----------------------------------------------------------------

def test_out_of_scope_module_not_checked():
    assert _fired("""
        class Renderer:
            def __init__(self, path):
                self.handle = open(path, "w")
                self.key = lambda row: row[0]
    """, module="repro.reporting.fixture") == []
