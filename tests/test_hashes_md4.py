"""MD4 against the RFC 1320 test vectors."""

import pytest

from repro.hashes.md4 import md4_digest, md4_hexdigest

RFC1320_VECTORS = [
    (b"", "31d6cfe0d16ae931b73c59d7e0c089c0"),
    (b"a", "bde52cb31de33e46245e05fbdbd6fb24"),
    (b"abc", "a448017aaf21d8525fc10ae87aa6729d"),
    (b"message digest", "d9130a8164549fe818874806e1c7014b"),
    (b"abcdefghijklmnopqrstuvwxyz", "d79e1c308aa5bbcdeea8ed63df412da9"),
    (b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
     "043f8582f241db351ce627e153e7f0e4"),
    (b"1234567890123456789012345678901234567890123456789012345678901234"
     b"5678901234567890", "e33b4ddc9c38f2199c3e7b164fcc0536"),
]


@pytest.mark.parametrize("message,expected", RFC1320_VECTORS)
def test_rfc1320_vectors(message, expected):
    assert md4_hexdigest(message) == expected


def test_digest_is_16_bytes():
    assert len(md4_digest(b"anything")) == 16


def test_block_boundary_lengths():
    # Padding straddles the 56-byte threshold and exact block sizes.
    for length in (55, 56, 57, 63, 64, 65, 127, 128):
        digest = md4_digest(b"x" * length)
        assert len(digest) == 16


def test_deterministic():
    assert md4_digest(b"foo@mydom.com") == md4_digest(b"foo@mydom.com")


def test_avalanche():
    a = md4_digest(b"foo@mydom.com")
    b = md4_digest(b"foo@mydom.con")
    assert a != b
    differing = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
    assert differing > 20  # roughly half of 128 bits
