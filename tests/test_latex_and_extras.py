"""LaTeX export, suspected leaks in the pipeline, generator options."""


from repro.reporting import (
    latex_escape,
    table1_latex,
    table2_latex,
    table3_latex,
)


def test_latex_escape():
    assert latex_escape("a&b_c%d") == r"a\&b\_c\%d"
    assert latex_escape("udff[em]") == "udff[em]"
    assert latex_escape("50%") == r"50\%"
    assert latex_escape("x^2~{y}") == \
        r"x\textasciicircum{}2\textasciitilde{}\{y\}"


def test_table1_latex_structure(analysis):
    text = table1_latex(analysis)
    assert text.count(r"\begin{table}") == 3
    assert text.count(r"\toprule") == 3
    assert r"sha256 of md5" in text
    assert r"\&" not in text.splitlines()[0]
    # Percent signs are escaped inside cells.
    assert r"\%" in text


def test_table2_latex(events):
    from repro.tracking import PersistenceAnalyzer
    report = PersistenceAnalyzer(events).report()
    text = table2_latex(report)
    assert r"udff[em]" in text
    assert "20 providers" in text
    assert r"\label{tab:providers}" in text


def test_table3_latex():
    counts = {"disclose_not_specific": 102, "disclose_specific": 9,
              "no_description": 15, "explicitly_not_shared": 4}
    text = table3_latex(counts)
    assert r"102/78.5\%" in text
    assert "Total" in text


def test_pipeline_suspected_disjoint_from_confirmed():
    """Pipeline heuristics never duplicate exact findings."""
    from repro import Study
    from repro.websim import (
        LeakBehavior,
        TrackerEmbed,
        Website,
        build_default_catalog,
    )
    from repro.websim.population import Population
    catalog = build_default_catalog()
    sites = {
        "plain-site.example": Website(
            domain="plain-site.example",
            embeds=[TrackerEmbed(catalog.get("facebook.com"),
                                 LeakBehavior(("uri",), (("sha256",),)))]),
        "salted-site.example": Website(
            domain="salted-site.example",
            embeds=[TrackerEmbed(
                catalog.get("dotomi.com"),
                LeakBehavior(("uri",), (("sha256",),), salt="pep::"))]),
    }
    result = Study(Population(sites=sites, catalog=catalog)).run()
    assert result.analysis.senders() == ["plain-site.example"]
    suspected_senders = {finding.sender
                         for finding in result.suspected_leaks}
    assert suspected_senders == {"salted-site.example"}


def test_calibrated_pipeline_has_no_suspected_leaks(study_spec):
    # All calibrated identifiers are precomputable, so the heuristic
    # layer must stay silent (no false positives on 20k+ requests).
    from repro import Study
    result = Study(study_spec.population).run()
    assert result.suspected_leaks == []


def test_generator_salting_option():
    from repro.websim.generator import GeneratorConfig, generate_population
    population = generate_population(seed=9, config=GeneratorConfig(
        n_sites=10, n_trackers=5, salt_probability=1.0,
        leak_probability=1.0))
    salted = [embed for site in population.sites.values()
              for embed in site.leaking_embeds() if embed.leak.salt]
    assert salted
    # Plaintext chains are never salted.
    for embed in salted:
        assert any(embed.leak.chains)


def test_generator_consent_option():
    from repro.websim.generator import GeneratorConfig, generate_population
    population = generate_population(seed=9, config=GeneratorConfig(
        n_sites=10, consent_probability=1.0))
    assert all(site.consent is not None
               for site in population.sites.values())
    # The universe remains crawlable with banners present.
    from repro.crawler import StudyCrawler
    dataset = StudyCrawler(population).crawl()
    assert dataset.status_counts().get("success") == 10
