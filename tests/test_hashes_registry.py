"""Transform registry: the paper-appendix corpus and chain semantics."""

import hashlib

import pytest

from repro import hashes

# Every transform named in the paper's appendix (normalized names).
APPENDIX_TRANSFORMS = [
    "base16", "base32", "base32hex", "base58", "base64", "gz", "bzip2",
    "deflate", "md2", "md4", "md5", "sha1", "sha224", "sha256", "sha384",
    "sha512", "crc16", "crc32", "sha3_224", "sha3_256", "sha3_384",
    "sha3_512", "ripemd128", "ripemd160", "ripemd256", "ripemd320",
    "whirlpool", "rot13", "snefru128", "snefru256", "adler32", "blake2b",
]


@pytest.mark.parametrize("name", APPENDIX_TRANSFORMS)
def test_appendix_transform_registered(name):
    assert hashes.has(name)
    transform = hashes.get(name)
    output = transform.apply(b"foo@mydom.com")
    assert output
    output.decode("ascii")  # canonical form must be ASCII-safe


def test_unknown_transform_raises():
    with pytest.raises(KeyError):
        hashes.get("rot14")


def test_sha256_matches_hashlib():
    value = "foo@mydom.com"
    assert hashes.apply_chain(value, ["sha256"]) == \
        hashlib.sha256(value.encode()).hexdigest()


def test_chain_composes_over_hex_digest():
    # "SHA256 of MD5" hashes the *hex digest string* of the MD5.
    value = "foo@mydom.com"
    md5_hex = hashlib.md5(value.encode()).hexdigest()
    expected = hashlib.sha256(md5_hex.encode()).hexdigest()
    assert hashes.apply_chain(value, ["md5", "sha256"]) == expected


def test_empty_chain_is_plaintext():
    assert hashes.apply_chain("foo@mydom.com", []) == "foo@mydom.com"


def test_chain_label_notation():
    assert hashes.chain_label(()) == "plaintext"
    assert hashes.chain_label(("sha256",)) == "sha256"
    assert hashes.chain_label(("md5", "sha256")) == "sha256 of md5"
    assert hashes.chain_label(("base64", "sha1", "sha256")) == \
        "sha256 of sha1 of base64"


def test_hash_outputs_are_lowercase_hex():
    for name in ("md5", "sha1", "sha256", "whirlpool", "ripemd160",
                 "md4", "snefru128"):
        output = hashes.apply_chain("x@y.example", [name])
        assert output == output.lower()
        int(output, 16)  # valid hex


def test_unfaithful_transforms_flagged():
    # MD2 and Snefru use substituted tables (documented in DESIGN.md).
    assert not hashes.get("md2").faithful
    assert not hashes.get("snefru128").faithful
    assert not hashes.get("snefru256").faithful
    assert hashes.get("md4").faithful
    assert hashes.get("whirlpool").faithful


def test_compression_transforms_emit_base64():
    import base64
    output = hashes.get("gz").apply(b"foo@mydom.com")
    base64.b64decode(output, validate=True)


def test_registry_covers_four_kinds():
    kinds = {t.kind for t in hashes.all_transforms()}
    assert kinds == {hashes.KIND_HASH, hashes.KIND_ENCODING,
                     hashes.KIND_CHECKSUM, hashes.KIND_COMPRESSION}


def test_transform_names_filter():
    hash_names = hashes.transform_names(kinds=[hashes.KIND_HASH])
    assert "sha256" in hash_names
    assert "base64" not in hash_names


def test_observed_chain_alphabet_registered():
    for name in hashes.OBSERVED_CHAIN_ALPHABET:
        assert hashes.has(name)
