"""Supervised executor + chaos harness: convergence under worker faults.

The acceptance contract of the supervised crawl: a deterministic chaos
plan that kills or hangs a worker mid-study still completes via
supervisor retry (no hang, no lost shard), and an interrupted study
resumes to a merged fingerprint bit-identical to an undisturbed serial
run.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.core import Study, StudyConfig
from repro.crawler import (
    CHAOS_KILL_EXIT_CODE,
    ChaosError,
    ChaosPlan,
    CheckpointError,
    FAILURE_PERMANENT,
    FAILURE_TRANSIENT,
    IncompleteCrawlError,
    MANIFEST_NAME,
    ParallelCrawler,
    SupervisorConfig,
    WorkerFault,
    classify_worker_failure,
    load_manifest,
    parse_chaos_plan,
    parse_chaos_spec,
)
from repro.crawler.supervisor import (
    EVENT_QUARANTINE,
    EVENT_RETRY,
    EVENT_WATCHDOG_TRIP,
    EVENT_WORKER_CRASHED,
)
from repro.obs import Recorder
from repro.websim.generator import GeneratorConfig, generate_population

_CONFIG = GeneratorConfig(n_sites=10, n_trackers=4, leak_probability=0.6,
                          confirmation_probability=0.4)
_NUM_SHARDS = 5


def _population():
    return generate_population(seed=5, config=_CONFIG)


def _serial_fingerprint():
    return ParallelCrawler(_population(), workers=1,
                           num_shards=_NUM_SHARDS).crawl().fingerprint()


def _target_shard(engine):
    """The first shard that actually crawls sites (layouts may leave
    some shards empty, where an after-sites fault would never fire)."""
    for index in range(engine.layout.num_shards):
        if engine.layout.info(index).domains:
            return index
    raise AssertionError("no non-empty shard in layout")


def _supervised(workers, chaos=None, config=None, **kwargs):
    return ParallelCrawler(_population(), workers=workers,
                           num_shards=_NUM_SHARDS, chaos=chaos,
                           supervision=config, **kwargs)


# -- chaos specs ---------------------------------------------------------


def test_parse_chaos_spec_full_grammar():
    fault = parse_chaos_spec("kill:3")
    assert (fault.kind, fault.shard, fault.after_sites,
            fault.attempts) == ("kill", 3, 1, 1)
    fault = parse_chaos_spec("hang:2:0")
    assert (fault.kind, fault.shard, fault.after_sites) == ("hang", 2, 0)
    fault = parse_chaos_spec("slow:1:4:*")
    assert fault.attempts is None
    assert parse_chaos_spec("KILL:0").kind == "kill"


@pytest.mark.parametrize("bad", ["", "kill", "explode:1", "kill:x",
                                 "kill:1:y", "kill:1:1:z", "kill:1:1:1:1",
                                 "kill:-1", "kill:1:1:0"])
def test_parse_chaos_spec_errors_echo_grammar(bad):
    with pytest.raises(ChaosError) as excinfo:
        parse_chaos_spec(bad)
    message = str(excinfo.value)
    assert "KIND:SHARD" in message       # the grammar is echoed
    assert "kill|hang|slow" in message


def test_parse_chaos_plan_empty_is_none():
    assert parse_chaos_plan(None) is None
    assert parse_chaos_plan([]) is None
    plan = parse_chaos_plan(["kill:0", "hang:2"])
    assert [fault.kind for fault in plan.faults] == ["kill", "hang"]


def test_fault_for_matches_shard_and_attempt():
    plan = ChaosPlan(faults=(WorkerFault(kind="kill", shard=1, attempts=2),))
    assert plan.fault_for(1, 0) is not None
    assert plan.fault_for(1, 1) is not None
    assert plan.fault_for(1, 2) is None     # retries past the budget run
    assert plan.fault_for(0, 0) is None
    poison = ChaosPlan(faults=(WorkerFault(kind="kill", shard=1,
                                           attempts=None),))
    assert poison.fault_for(1, 99) is not None


def test_chaos_requires_multiple_workers():
    plan = ChaosPlan(faults=(WorkerFault(kind="kill", shard=0),))
    with pytest.raises(ValueError):
        ParallelCrawler(_population(), workers=1, chaos=plan)


# -- the failure taxonomy ------------------------------------------------


def test_worker_failure_taxonomy_matches_crawl_level_one():
    # Process deaths and hangs are environmental -> transient.
    assert classify_worker_failure(EVENT_WORKER_CRASHED) == FAILURE_TRANSIENT
    assert classify_worker_failure(EVENT_WATCHDOG_TRIP) == FAILURE_TRANSIENT
    # Deterministic Python errors recur on retry -> permanent.
    assert classify_worker_failure("worker_error",
                                   "KeyError") == FAILURE_PERMANENT
    # ... unless the type itself is environmental.
    assert classify_worker_failure("worker_error",
                                   "OSError") == FAILURE_TRANSIENT


# -- convergence under kills and hangs (the acceptance criterion) --------


@pytest.mark.parametrize("workers", [2, 4])
def test_killed_worker_retries_and_converges(workers):
    """A chaos-killed worker never hangs or loses its shard: the
    supervisor relaunches it and the merged fingerprint is bit-identical
    to the undisturbed serial crawl."""
    serial = _serial_fingerprint()
    engine = _supervised(workers)
    shard = _target_shard(engine)
    chaos = ChaosPlan(faults=(WorkerFault(kind="kill", shard=shard,
                                          after_sites=1),))
    result = _supervised(workers, chaos=chaos,
                         config=SupervisorConfig(heartbeat_deadline=30.0)
                         ).run()
    assert result.complete
    assert result.dataset.fingerprint() == serial
    kinds = [event.kind for event in result.supervision.events]
    assert EVENT_WORKER_CRASHED in kinds and EVENT_RETRY in kinds
    crash = next(event for event in result.supervision.events
                 if event.kind == EVENT_WORKER_CRASHED)
    assert crash.shard == shard
    assert crash.failure_class == FAILURE_TRANSIENT
    assert str(CHAOS_KILL_EXIT_CODE) in crash.detail


@pytest.mark.parametrize("workers", [2, 4])
def test_hung_worker_trips_watchdog_and_converges(workers):
    """A wedged worker emits no heartbeats; the watchdog kills it, the
    retry converges, and the fingerprint is untouched."""
    serial = _serial_fingerprint()
    engine = _supervised(workers)
    shard = _target_shard(engine)
    chaos = ChaosPlan(faults=(WorkerFault(kind="hang", shard=shard,
                                          after_sites=1),))
    result = _supervised(
        workers, chaos=chaos,
        config=SupervisorConfig(heartbeat_deadline=1.5, kill_grace=5.0)
        ).run()
    assert result.complete
    assert result.dataset.fingerprint() == serial
    kinds = [event.kind for event in result.supervision.events]
    assert EVENT_WATCHDOG_TRIP in kinds and EVENT_RETRY in kinds


def test_kill_at_startup_restarts_shard_from_scratch():
    serial = _serial_fingerprint()
    engine = _supervised(2)
    shard = _target_shard(engine)
    chaos = ChaosPlan(faults=(WorkerFault(kind="kill", shard=shard,
                                          after_sites=0),))
    result = _supervised(2, chaos=chaos).run()
    assert result.complete
    assert result.dataset.fingerprint() == serial


def test_kill_retry_resumes_from_shard_checkpoint(tmp_path):
    """With checkpointing on, the relaunched worker resumes the killed
    shard from its last durable site instead of recrawling it — and the
    fingerprint still matches the serial run exactly."""
    serial = _serial_fingerprint()
    engine = _supervised(2)
    shard = _target_shard(engine)
    chaos = ChaosPlan(faults=(WorkerFault(kind="kill", shard=shard,
                                          after_sites=1),))
    result = _supervised(2, chaos=chaos,
                         checkpoint_dir=str(tmp_path)).run()
    assert result.complete
    assert result.dataset.fingerprint() == serial
    manifest = load_manifest(str(tmp_path))
    assert manifest["status"] == "complete"
    assert manifest["event_counts"].get(EVENT_WORKER_CRASHED, 0) >= 1


def test_poison_shard_is_quarantined_not_retried_forever():
    """A fault firing on every attempt exhausts the retry budget; the
    shard is quarantined and the partial result says so explicitly."""
    engine = _supervised(2)
    shard = _target_shard(engine)
    chaos = ChaosPlan(faults=(WorkerFault(kind="kill", shard=shard,
                                          after_sites=1, attempts=None),))
    result = _supervised(2, chaos=chaos,
                         config=SupervisorConfig(max_retries=2)).run()
    assert not result.complete
    assert result.incomplete_shards == (shard,)
    assert shard in result.supervision.quarantined
    terminal = result.supervision.quarantined[shard]
    assert terminal.kind == EVENT_QUARANTINE
    assert terminal.failure_class == FAILURE_TRANSIENT
    # 1 original + 2 retries, then give up.
    crashes = [event for event in result.supervision.events
               if event.kind == EVENT_WORKER_CRASHED]
    assert len(crashes) == 3
    # The salvage: every other shard's sites are in the dataset.
    expected = sum(len(engine.layout.info(index).domains)
                   for index in range(engine.layout.num_shards)
                   if index != shard)
    assert len(result.dataset.flows) == expected


def test_crawl_refuses_to_fingerprint_partial_merges():
    engine = _supervised(2)
    shard = _target_shard(engine)
    chaos = ChaosPlan(faults=(WorkerFault(kind="kill", shard=shard,
                                          after_sites=1, attempts=None),))
    with pytest.raises(IncompleteCrawlError) as excinfo:
        _supervised(2, chaos=chaos,
                    config=SupervisorConfig(max_retries=1)).crawl()
    assert excinfo.value.incomplete_shards == (shard,)
    assert excinfo.value.result is not None   # the salvage rides along
    assert not excinfo.value.result.complete


def test_supervision_events_surface_as_obs_counters():
    """Abnormal events (and only those) reach the trace: a clean run's
    merged trace stays bit-identical at every worker count."""
    engine = _supervised(2)
    shard = _target_shard(engine)
    chaos = ChaosPlan(faults=(WorkerFault(kind="kill", shard=shard,
                                          after_sites=1),))
    recorder = Recorder()
    result = _supervised(2, chaos=chaos, recorder=recorder).run()
    assert result.complete
    counters = {name for name in recorder.counters
                if name.startswith("supervisor.")}
    assert "supervisor.events.%s" % EVENT_WORKER_CRASHED in counters
    assert "supervisor.events.%s" % EVENT_RETRY in counters

    clean = Recorder()
    _supervised(2, recorder=clean).run()
    assert not [name for name in clean.counters
                if name.startswith("supervisor.")]


# -- graceful shutdown and resume ----------------------------------------


def test_graceful_shutdown_drains_writes_manifest_and_resumes(tmp_path):
    """request_shutdown mid-crawl: in-flight shards drain, the study
    manifest marks the run interrupted, and a later run against the
    same checkpoint dir converges to the undisturbed fingerprint."""
    serial = _serial_fingerprint()
    engine = _supervised(2, checkpoint_dir=str(tmp_path),
                         config=SupervisorConfig(drain_timeout=60.0))
    beats = []

    def sink(event):
        beats.append(event)
        if len(beats) == 1:
            engine.request_shutdown("test")

    engine.progress = sink
    result = engine.run()
    assert result.supervision.interrupted
    assert not result.complete
    assert result.supervision.unfinished      # something was left undone
    manifest = load_manifest(str(tmp_path))
    assert manifest["status"] == "interrupted"
    assert manifest["unfinished_shards"] == sorted(
        result.supervision.unfinished)
    assert manifest["completed_shards"] == sorted(
        r.index for r in result.supervision.results)

    resumed = ParallelCrawler(_population(), workers=4,
                              num_shards=_NUM_SHARDS,
                              checkpoint_dir=str(tmp_path)).run()
    assert resumed.complete
    assert resumed.dataset.fingerprint() == serial
    assert load_manifest(str(tmp_path))["status"] == "complete"


def test_study_crawl_resume_true_resumes_from_checkpoint(tmp_path):
    """Study.crawl(resume=True) picks up an interrupted parallel crawl
    from its checkpoint directory — and starts fresh when it is empty."""
    serial = _serial_fingerprint()
    checkpoint = str(tmp_path / "study-ckpt")
    config = StudyConfig(workers=2, num_shards=_NUM_SHARDS,
                         supervision=SupervisorConfig(drain_timeout=60.0))
    study = Study(_population(), config)
    engine_box = []
    original = study._parallel_engine

    def capturing(checkpoint_dir=None):
        engine = original(checkpoint_dir=checkpoint_dir)
        engine_box.append(engine)
        return engine

    study._parallel_engine = capturing
    seen = []

    def sink(event):
        seen.append(event)
        if len(seen) == 1:
            engine_box[0].request_shutdown("test")

    study.config.progress = sink
    outcome = study.crawl(checkpoint=checkpoint, resume=True)
    assert not outcome.complete and outcome.supervision.interrupted

    study.config.progress = None
    resumed = study.crawl(checkpoint=checkpoint, resume=True)
    assert resumed.complete
    assert resumed.dataset.fingerprint() == serial


def test_study_crawl_resume_true_requires_checkpoint():
    with pytest.raises(ValueError):
        Study(_population()).crawl(resume=True)


def test_study_run_raises_on_incomplete_crawl():
    engine = _supervised(2)
    shard = _target_shard(engine)
    chaos = ChaosPlan(faults=(WorkerFault(kind="kill", shard=shard,
                                          after_sites=1, attempts=None),))
    config = StudyConfig(workers=2, num_shards=_NUM_SHARDS, chaos=chaos,
                         supervision=SupervisorConfig(max_retries=1))
    with pytest.raises(IncompleteCrawlError):
        Study(_population(), config).run()


def test_sigterm_mid_study_resumes_bit_identical(tmp_path):
    """The real thing: SIGTERM a crawling process, then resume its
    checkpoint directory and get the undisturbed serial fingerprint.

    The interrupted run carries a hang fault firing on *every* attempt,
    so it can never complete before the signal lands — the interruption
    is deterministic, not a race against the crawl's speed.
    """
    serial = _serial_fingerprint()
    checkpoint_dir = str(tmp_path / "ckpt")
    probe = _supervised(2)
    shard = _target_shard(probe)
    script = textwrap.dedent("""
        import sys
        from repro.crawler import (ChaosPlan, ParallelCrawler,
                                   SupervisorConfig, WorkerFault)
        from repro.websim.generator import (GeneratorConfig,
                                            generate_population)
        population = generate_population(
            seed=5, config=GeneratorConfig(
                n_sites=10, n_trackers=4, leak_probability=0.6,
                confirmation_probability=0.4))
        chaos = ChaosPlan(faults=(WorkerFault(
            kind="hang", shard=%(shard)d, after_sites=1, attempts=None),))
        def sink(event):
            print("BEAT", flush=True)
        engine = ParallelCrawler(
            population, workers=2, num_shards=%(num_shards)d,
            chaos=chaos, checkpoint_dir=%(ckpt)r, progress=sink,
            supervision=SupervisorConfig(heartbeat_deadline=300.0,
                                         drain_timeout=3.0))
        result = engine.run()
        sys.exit(0 if result.complete else 130)
    """) % {"shard": shard, "num_shards": _NUM_SHARDS,
            "ckpt": checkpoint_dir}
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), os.pardir, "src"),
         env.get("PYTHONPATH", "")])
    process = subprocess.Popen([sys.executable, "-c", script],
                               stdout=subprocess.PIPE, env=env, text=True)
    try:
        line = process.stdout.readline()   # first heartbeat: crawling
        assert line.strip() == "BEAT"
        process.send_signal(signal.SIGTERM)
        process.communicate(timeout=120)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 130       # interrupted, not crashed

    manifest = load_manifest(checkpoint_dir)
    assert manifest["status"] == "interrupted"

    resumed = ParallelCrawler(_population(), workers=2,
                              num_shards=_NUM_SHARDS,
                              checkpoint_dir=checkpoint_dir).run()
    assert resumed.complete
    assert resumed.dataset.fingerprint() == serial


# -- the study manifest --------------------------------------------------


def test_manifest_absent_means_fresh_start(tmp_path):
    assert load_manifest(str(tmp_path)) is None


def test_truncated_manifest_is_rejected_with_clear_error(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text('{"type": "study-man')
    with pytest.raises(CheckpointError) as excinfo:
        load_manifest(str(tmp_path))
    assert "manifest" in str(excinfo.value)


def test_foreign_manifest_is_rejected(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text(json.dumps({"type": "other"}))
    with pytest.raises(CheckpointError):
        load_manifest(str(tmp_path))


def test_manifest_layout_mismatch_rejected_before_crawling(tmp_path):
    _supervised(2, checkpoint_dir=str(tmp_path)).run()
    other = ParallelCrawler(_population(), workers=2,
                            num_shards=_NUM_SHARDS + 2,
                            checkpoint_dir=str(tmp_path))
    with pytest.raises(CheckpointError) as excinfo:
        other.run()
    assert "layout" in str(excinfo.value)


def test_supervisor_config_validates():
    with pytest.raises(ValueError):
        SupervisorConfig(max_retries=-1)
    with pytest.raises(ValueError):
        SupervisorConfig(heartbeat_deadline=0)
    with pytest.raises(ValueError):
        SupervisorConfig(poll_interval=0)
    with pytest.raises(ValueError):
        SupervisorConfig(max_in_flight=0)
