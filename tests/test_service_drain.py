"""Graceful drain and restart-resume through the service layer.

The PR-6 supervised crawl already guarantees that a drained study
leaves per-shard checkpoints and a resumable ``study-manifest.json``;
these tests pin the service plumbing on top: SIGTERM-style shutdown
mid-run yields a ``partial`` + ``resumable`` job, a fresh service over
the same jobs directory requeues it, and the resumed run completes
with the fingerprint the spec would have produced uninterrupted.
"""

import json
import os

import pytest

from repro.crawler.supervisor import MANIFEST_NAME
from repro.service import (
    STATE_COMPLETE,
    STATE_PARTIAL,
    JobRun,
    JobSpec,
    ServiceConfig,
    StudyService,
)

# Enough sites to spread over many shards: after the first heartbeat
# there are still unlaunched shards, so a drain always interrupts.
SPEC = {"schema": 1, "kind": "study", "seed": 13, "sites": 24,
        "trackers": 6, "workers": 2}

DRAIN_TIMEOUT = 120.0


def _wait_for_heartbeat(record, timeout=DRAIN_TIMEOUT):
    """Block until the job's event log holds at least one heartbeat."""
    index = 0
    while True:
        assert record.log.wait_for(index, timeout), \
            "no heartbeat within %ss" % timeout
        events, closed = record.log.events_after(index)
        for event in events:
            if event.get("type") == "heartbeat":
                return
        assert not closed, "job finished before a drain could land"
        index += len(events)


def test_drain_then_restart_resumes_to_identical_fingerprint(tmp_path):
    jobs_dir = str(tmp_path / "jobs")

    # Phase 1: submit, let the crawl start, then drain mid-flight.
    first = StudyService(ServiceConfig(port=0, jobs_dir=jobs_dir,
                                       runners=1, queue_size=2))
    first.start()
    record = first.submit(SPEC)
    _wait_for_heartbeat(record)
    first.begin_shutdown("test drain")        # what SIGTERM triggers
    assert first.wait_stopped(DRAIN_TIMEOUT), "runner did not drain"
    first.close()

    assert record.state == STATE_PARTIAL
    assert record.resumable
    assert record.log.closed

    manifest_path = os.path.join(record.checkpoint_dir, MANIFEST_NAME)
    assert os.path.exists(manifest_path), \
        "a drained job must leave the PR-6 resumable manifest"
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    assert manifest["status"] == "interrupted"

    # The drained state is served truthfully: result would 409, the
    # status document says partial + resumable.
    status_doc = record.status_document()
    assert status_doc["state"] == STATE_PARTIAL
    assert status_doc["resumable"] is True
    assert status_doc["fingerprint"] == ""   # incomplete: never minted

    # Phase 2: a fresh service over the same directory requeues and
    # finishes the job from its checkpoints.
    second = StudyService(ServiceConfig(port=0, jobs_dir=jobs_dir,
                                        runners=1, queue_size=2))
    second.start()
    resumed = second.store.get(record.id)
    assert resumed.recovered, "recover() must requeue the partial job"
    index = 0
    while True:
        assert resumed.log.wait_for(index, DRAIN_TIMEOUT)
        events, closed = resumed.log.events_after(index)
        index += len(events)
        if closed:
            break
    second.close()

    assert resumed.state == STATE_COMPLETE
    assert resumed.attempts >= 1

    # One continuous progress log: the resumed run appended to the
    # drained run's heartbeats instead of truncating them.
    with open(resumed.progress_path) as fh:
        heartbeats = [json.loads(line) for line in fh if line.strip()]
    assert len(heartbeats) > SPEC["sites"] // 2

    # Acceptance: the interrupted-then-resumed fingerprint is exactly
    # what an uninterrupted run of the same spec produces.
    uninterrupted = JobRun(JobSpec.from_dict(SPEC)).execute()
    assert uninterrupted.state == STATE_COMPLETE
    assert resumed.fingerprint == uninterrupted.fingerprint


def test_shutdown_rejects_new_submissions(tmp_path):
    service = StudyService(ServiceConfig(
        port=0, jobs_dir=str(tmp_path / "jobs"), runners=0, queue_size=4))
    service.start()
    service.begin_shutdown("test")
    from repro.service import QueueFullError
    with pytest.raises(QueueFullError, match="shutting down"):
        service.submit({"sites": 4})
    service.close()
