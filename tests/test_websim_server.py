"""Origin server behaviour: pages, auth endpoints, tracker endpoints."""

import pytest

from repro.netsim import Headers, HttpRequest, Url, encode_urlencoded
from repro.websim import (
    SiteAuthConfig,
    TrackerEmbed,
    WebServer,
    Website,
    build_default_catalog,
    parse_page,
)


@pytest.fixture()
def server():
    catalog = build_default_catalog()
    mail = []
    sites = {
        "shop.example": Website(
            domain="shop.example",
            auth=SiteAuthConfig(requires_email_confirmation=True),
            embeds=[TrackerEmbed(catalog.get("facebook.com"))],
            cname_records={"metrics": "shop.example.sc.omtrdc.net"}),
        "open.example": Website(domain="open.example"),
        "down.example": Website(domain="down.example",
                                auth=SiteAuthConfig(unreachable=True)),
        "bot.example": Website(domain="bot.example",
                               auth=SiteAuthConfig(bot_detection=True)),
    }
    web_server = WebServer(sites=sites, catalog=catalog,
                           mail_hook=lambda site, email, url:
                               mail.append((site, email, url)))
    web_server.sent_mail = mail
    return web_server


def _get(server, url, headers=None):
    return server.handle(HttpRequest(method="GET", url=Url.parse(url),
                                     headers=headers or Headers()))


def _post(server, url, fields, headers=None):
    all_headers = headers or Headers()
    all_headers.set("Content-Type", "application/x-www-form-urlencoded")
    return server.handle(HttpRequest(
        method="POST", url=Url.parse(url), headers=all_headers,
        body=encode_urlencoded(list(fields.items()))))


def test_homepage_served_with_embeds(server):
    response = _get(server, "https://www.shop.example/")
    assert response.status == 200
    page = parse_page(response.body.decode())
    trackers = [tag.get("data-tracker") for tag in page.scripts]
    assert "facebook.com" in trackers


def test_homepage_sets_session_cookie(server):
    response = _get(server, "https://www.shop.example/")
    assert any(header.startswith("session=")
               for header in response.set_cookie_headers)


def test_unreachable_site_503(server):
    assert _get(server, "https://www.down.example/").status == 503


def test_unknown_origin_404(server):
    assert _get(server, "https://www.nowhere.example/").status == 404


def test_signup_page_has_form(server):
    response = _get(server, "https://www.shop.example/account/register")
    page = parse_page(response.body.decode())
    assert page.forms and page.forms[0].form_id == "signup-form"


def test_signup_confirmation_flow(server):
    email = "user@mail.example"
    response = _post(server, "https://www.shop.example/account/register/submit",
                     {"email": email})
    assert response.status == 200
    assert len(server.sent_mail) == 1
    site, sent_email, confirm_url = server.sent_mail[0]
    assert sent_email == email
    # The confirmation URL must never embed the address itself.
    assert email not in confirm_url
    # Sign-in is refused until the link is visited.
    assert _post(server, "https://www.shop.example/account/login/submit",
                 {"email": email, "password": "x"}).status == 401
    assert _get(server, confirm_url).status == 200
    assert _post(server, "https://www.shop.example/account/login/submit",
                 {"email": email, "password": "x"}).status == 200


def test_signup_without_confirmation_immediately_active(server):
    email = "user@mail.example"
    _post(server, "https://www.open.example/account/register/submit",
          {"email": email})
    assert _post(server, "https://www.open.example/account/login/submit",
                 {"email": email, "password": "x"}).status == 200


def test_signup_missing_email_400(server):
    assert _post(server, "https://www.open.example/account/register/submit",
                 {}).status == 400


def test_invalid_confirmation_token_400(server):
    _post(server, "https://www.shop.example/account/register/submit",
          {"email": "a@b.example"})
    response = _get(server,
                    "https://www.shop.example/account/confirm?token=bogus")
    assert response.status == 400


def test_bot_detection_blocks_automated_clients(server):
    headers = Headers([("Sec-Automation", "true")])
    response = _post(server, "https://www.bot.example/account/register/submit",
                     {"email": "a@b.example"}, headers=headers)
    assert response.status == 403
    # A manual (human-like) client passes (POST-redirect-GET).
    assert _post(server, "https://www.bot.example/account/register/submit",
                 {"email": "a@b.example"}).status == 302


def test_get_form_submit_accepted(server):
    response = _get(server, "https://www.open.example/account/register/"
                            "submit?email=a%40b.example")
    assert response.status == 200


def test_cloaked_subdomain_served_as_tracker(server):
    response = _get(server, "https://metrics.shop.example/b/ss?ev=PageView")
    assert response.status == 200
    assert response.headers.get("Content-Type") == "image/gif"


def test_tracker_endpoint_sets_cookie_once(server):
    url = "https://www.facebook.com/tr?ev=PageView"
    first = _get(server, url)
    assert any(h.startswith("tuid=") for h in first.set_cookie_headers)
    # With a cookie already present, no new Set-Cookie is emitted.
    headers = Headers([("Cookie", "tuid=abc")])
    second = _get(server, url, headers=headers)
    assert second.set_cookie_headers == []


def test_tracker_script_content_type(server):
    response = _get(server, "https://connect.facebook.net/en_US/fbevents.js")
    assert response.headers.get("Content-Type") == "application/javascript"


def test_product_and_privacy_pages(server):
    assert _get(server,
                "https://www.shop.example/products/aurora-lamp").status == 200
    assert _get(server, "https://www.shop.example/privacy").status == 200
    assert _get(server, "https://www.shop.example/nope").status == 404
