"""DNS resolver and CNAME cloaking detection."""

import pytest

from repro.dnssim import (
    CnameCloakingDetector,
    DnsError,
    Resolver,
    ResourceRecord,
    Zone,
)


def _zone():
    zone = Zone()
    zone.add_a("www.shop.com", "203.0.113.1")
    zone.add_cname("metrics.shop.com", "shop.com.sc.omtrdc.net")
    zone.add_a("shop.com.sc.omtrdc.net", "203.0.113.2")
    zone.add_cname("a.shop.com", "b.shop.com")
    zone.add_cname("b.shop.com", "c.shop.com")
    zone.add_a("c.shop.com", "203.0.113.3")
    return zone


def test_a_record_resolution():
    resolution = Resolver(_zone()).resolve("www.shop.com")
    assert resolution.address == "203.0.113.1"
    assert resolution.cname_chain == ()
    assert resolution.canonical_name == "www.shop.com"


def test_cname_chain_followed():
    resolution = Resolver(_zone()).resolve("metrics.shop.com")
    assert resolution.address == "203.0.113.2"
    assert resolution.cname_chain == ("shop.com.sc.omtrdc.net",)


def test_multi_hop_chain():
    resolution = Resolver(_zone()).resolve("a.shop.com")
    assert resolution.cname_chain == ("b.shop.com", "c.shop.com")
    assert resolution.canonical_name == "c.shop.com"


def test_nxdomain():
    with pytest.raises(DnsError):
        Resolver(_zone()).resolve("missing.shop.com")


def test_cname_loop_detected():
    zone = Zone()
    zone.add_cname("x.shop.com", "y.shop.com")
    zone.add_cname("y.shop.com", "x.shop.com")
    with pytest.raises(DnsError):
        Resolver(zone).resolve("x.shop.com")


def test_exists_and_chain_helpers():
    resolver = Resolver(_zone())
    assert resolver.exists("www.shop.com")
    assert not resolver.exists("nope.shop.com")
    assert resolver.cname_chain("nope.shop.com") == ()


def test_record_type_validation():
    with pytest.raises(ValueError):
        ResourceRecord("x.com", "TXT", "hello")


def test_names_normalized():
    zone = Zone()
    zone.add_a("WWW.Shop.COM.", "203.0.113.9")
    assert Resolver(zone).resolve("www.shop.com").address == "203.0.113.9"


# -- Cloaking detection -------------------------------------------------------

def test_cloaked_subdomain_detected():
    detector = CnameCloakingDetector(Resolver(_zone()))
    verdict = detector.classify("metrics.shop.com", "www.shop.com")
    assert verdict.cloaked
    assert verdict.tracker_zone == "omtrdc.net"
    assert verdict.organisation == "Adobe"
    assert verdict.effective_domain == "omtrdc.net"


def test_uncloaked_first_party_subdomain():
    detector = CnameCloakingDetector(Resolver(_zone()))
    verdict = detector.classify("a.shop.com", "www.shop.com")
    assert not verdict.cloaked
    assert verdict.effective_domain == "a.shop.com"


def test_plain_third_party_not_cloaking():
    zone = _zone()
    zone.add_a("tracker.net")
    detector = CnameCloakingDetector(Resolver(zone))
    verdict = detector.classify("tracker.net", "www.shop.com")
    assert not verdict.cloaked


def test_custom_zone_registration():
    zone = Zone()
    zone.add_cname("t.shop.com", "shop.com.x.newtracker.example")
    zone.add_a("shop.com.x.newtracker.example")
    detector = CnameCloakingDetector(Resolver(zone))
    assert not detector.classify("t.shop.com", "www.shop.com").cloaked
    detector.add_zone("newtracker.example", "NewTracker")
    verdict = detector.classify("t.shop.com", "www.shop.com")
    assert verdict.cloaked and verdict.organisation == "NewTracker"


def test_cloaked_hosts_bulk():
    detector = CnameCloakingDetector(Resolver(_zone()))
    verdicts = detector.cloaked_hosts(
        ["metrics.shop.com", "a.shop.com", "www.shop.com"], "www.shop.com")
    assert list(verdicts) == ["metrics.shop.com"]
