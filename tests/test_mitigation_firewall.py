"""PII firewall: outbound scrubbing of candidate tokens."""

import pytest

from repro import hashes
from repro.core import CandidateTokenSet, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.mitigation import PiiFirewall, REDACTION
from repro.netsim import (
    Headers,
    HttpRequest,
    Url,
    decode_urlencoded,
    encode_urlencoded,
)

EMAIL = DEFAULT_PERSONA.email
SHA256_TOKEN = hashes.apply_chain(EMAIL, ["sha256"])


@pytest.fixture(scope="module")
def firewall():
    return PiiFirewall(CandidateTokenSet(DEFAULT_PERSONA))


def _request(url, headers=None, body=b"", method="GET", content_type=None):
    all_headers = headers or Headers()
    if content_type:
        all_headers.set("Content-Type", content_type)
    return HttpRequest(method=method, url=Url.parse(url),
                       headers=all_headers, body=body)


def test_query_token_redacted(firewall):
    request = _request("https://t.example/p?uid=%s&ev=1" % SHA256_TOKEN)
    scrubbed, report = firewall.scrub_request(request, "www.shop.example")
    assert report.modified and "query" in report.redacted_locations
    assert scrubbed.url.query_get("uid") == REDACTION
    assert scrubbed.url.query_get("ev") == "1"  # benign params untouched


def test_plaintext_percent_encoded_redacted(firewall):
    request = _request("https://t.example/p?em=%s"
                       % EMAIL.replace("@", "%40"))
    scrubbed, report = firewall.scrub_request(request, "www.shop.example")
    assert report.modified
    assert EMAIL not in str(scrubbed.url).replace("%40", "@")


def test_referer_scrubbed(firewall):
    headers = Headers([("Referer",
                        "https://www.shop.example/s?email=%s" % EMAIL)])
    request = _request("https://t.example/p.gif", headers=headers)
    scrubbed, report = firewall.scrub_request(request, "www.shop.example")
    assert "referer" in report.redacted_locations
    assert EMAIL not in scrubbed.headers.get("Referer")
    assert REDACTION in scrubbed.headers.get("Referer")


def test_cookie_header_scrubbed(firewall):
    headers = Headers([("Cookie", "sid=1; uid=%s" % SHA256_TOKEN)])
    request = _request("https://t.example/p", headers=headers)
    scrubbed, report = firewall.scrub_request(request, "www.shop.example")
    assert "cookie" in report.redacted_locations
    assert SHA256_TOKEN not in scrubbed.headers.get("Cookie")
    assert "sid=1" in scrubbed.headers.get("Cookie")


def test_urlencoded_body_scrubbed(firewall):
    body = encode_urlencoded([("u_hem", SHA256_TOKEN), ("ev", "id")])
    request = _request("https://t.example/p", method="POST", body=body,
                       content_type="application/x-www-form-urlencoded")
    scrubbed, report = firewall.scrub_request(request, "www.shop.example")
    fields = dict(decode_urlencoded(scrubbed.body))
    assert fields["u_hem"] == REDACTION
    assert fields["ev"] == "id"


def test_json_body_scrubbed(firewall):
    body = ('{"email_hash": "%s"}' % SHA256_TOKEN).encode()
    request = _request("https://t.example/p", method="POST", body=body,
                       content_type="application/json")
    scrubbed, report = firewall.scrub_request(request, "www.shop.example")
    assert SHA256_TOKEN not in scrubbed.body_text()


def test_first_party_requests_untouched(firewall):
    request = _request("https://www.shop.example/submit?email=%s" % EMAIL)
    scrubbed, report = firewall.scrub_request(request, "www.shop.example")
    assert not report.modified
    assert scrubbed is request


def test_clean_third_party_request_untouched(firewall):
    request = _request("https://t.example/p?uid=nothing-here")
    scrubbed, report = firewall.scrub_request(request, "www.shop.example")
    assert not report.modified
    assert scrubbed is request


def test_overlapping_tokens_single_redaction(firewall):
    # Upper+lowercase variants overlap the same span.
    request = _request("https://t.example/p?x=%s" % SHA256_TOKEN)
    scrubbed, _ = firewall.scrub_request(request, "www.shop.example")
    assert scrubbed.url.query_get("x").count(REDACTION) == 1


def test_firewall_statistics(study_spec):
    from repro.crawler import StudyCrawler
    firewall = PiiFirewall(CandidateTokenSet(DEFAULT_PERSONA))
    sites = [study_spec.population.sites[d]
             for d in study_spec.leaking_domains[:5]]
    StudyCrawler(study_spec.population, firewall=firewall).crawl(
        sites=sites)
    assert firewall.scrubbed_requests > 0
    assert firewall.redactions >= firewall.scrubbed_requests


def test_cloaking_aware_firewall_scrubs_cloaked_cookie(study_spec):
    from repro.dnssim import Resolver, Zone
    zone = Zone()
    zone.add_cname("metrics.shop.example", "shop.example.sc.omtrdc.net")
    zone.add_a("shop.example.sc.omtrdc.net")
    blind = PiiFirewall(CandidateTokenSet(DEFAULT_PERSONA))
    aware = PiiFirewall(CandidateTokenSet(DEFAULT_PERSONA),
                        resolver=Resolver(zone))
    headers = Headers([("Cookie", "s_ecid=%s" % SHA256_TOKEN)])
    request = _request("https://metrics.shop.example/b/ss?ev=1",
                       headers=headers)
    _, blind_report = blind.scrub_request(request, "www.shop.example")
    assert not blind_report.modified   # looks first-party without DNS
    _, aware_report = aware.scrub_request(request, "www.shop.example")
    assert "cookie" in aware_report.redacted_locations


def test_firewalled_crawl_has_no_detectable_leaks(study_spec):
    """The headline guarantee: detector-grade scrubbing at the edge."""
    from repro.crawler import StudyCrawler
    tokens = CandidateTokenSet(DEFAULT_PERSONA)
    firewall = PiiFirewall(tokens,
                           resolver=study_spec.population.resolver())
    sites = [study_spec.population.sites[d]
             for d in study_spec.leaking_domains[:10]]
    dataset = StudyCrawler(study_spec.population,
                           firewall=firewall).crawl(sites=sites)
    detector = LeakDetector(tokens, catalog=study_spec.catalog,
                            resolver=study_spec.population.resolver())
    assert detector.detect(dataset.log) == []
    # Tracker traffic itself still flows (requests not blocked).
    third_party = [e for e in dataset.log
                   if e.request.url.host.endswith("facebook.com")
                   and not e.was_blocked]
    assert third_party
