"""CRC and Adler checksums against their canonical check values."""

import zlib


from repro.hashes.crc import (
    adler32,
    adler32_hexdigest,
    crc16_arc,
    crc16_ccitt,
    crc16_hexdigest,
    crc32,
    crc32_hexdigest,
)

# "123456789" is the standard CRC catalogue check input.
CHECK_INPUT = b"123456789"


def test_crc16_arc_check_value():
    assert crc16_arc(CHECK_INPUT) == 0xBB3D


def test_crc16_ccitt_false_check_value():
    assert crc16_ccitt(CHECK_INPUT) == 0x29B1


def test_crc32_matches_zlib():
    for data in (b"", b"a", CHECK_INPUT, b"foo@mydom.com", b"x" * 1000):
        assert crc32(data) == zlib.crc32(data) & 0xFFFFFFFF


def test_crc32_check_value():
    assert crc32(CHECK_INPUT) == 0xCBF43926


def test_adler32_check_value():
    # Adler-32 of "123456789" per zlib.
    assert adler32(CHECK_INPUT) == zlib.adler32(CHECK_INPUT)


def test_hexdigest_widths():
    assert len(crc16_hexdigest(b"data")) == 4
    assert len(crc32_hexdigest(b"data")) == 8
    assert len(adler32_hexdigest(b"data")) == 8


def test_hexdigests_lowercase():
    for digest in (crc16_hexdigest(b"PII"), crc32_hexdigest(b"PII"),
                   adler32_hexdigest(b"PII")):
        assert digest == digest.lower()


def test_empty_input():
    assert crc16_arc(b"") == 0
    assert crc32(b"") == 0
    assert adler32(b"") == 1  # Adler-32 initial value
