"""CON4xx concurrency rules: lock model, order graph, blocking calls."""

import textwrap

from repro.statan import analyze_source
from repro.statan.rules.concurrency import (
    BlockingUnderLockRule,
    ConditionWaitRule,
    LockOrderInversionRule,
    SharedMutableStateRule,
    ThreadLeakRule,
)


def _findings(source, rule_cls, module="repro.service.fixture"):
    return analyze_source(textwrap.dedent(source), [rule_cls()],
                          module=module)


def _fired(source, rule_cls, module="repro.service.fixture"):
    return [finding.rule
            for finding in _findings(source, rule_cls, module)]


# -- CON401: shared mutable state --------------------------------------------

GUARDED_READ_BARE_WRITE = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._value = 0

        def read(self):
            with self._lock:
                return self._value

        def poke(self):
            self._value = 1
"""


def test_con401_unguarded_write_flagged():
    findings = _findings(GUARDED_READ_BARE_WRITE, SharedMutableStateRule)
    assert [finding.rule for finding in findings] == ["CON401"]
    message = findings[0].message
    assert "_value" in message and "_lock" in message
    assert "poke()" in message


def test_con401_all_guarded_clean():
    assert _fired("""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._value = 0

            def read(self):
                with self._lock:
                    return self._value

            def poke(self):
                with self._lock:
                    self._value = 1
    """, SharedMutableStateRule) == []


def test_con401_init_writes_exempt():
    # __init__ runs before the object is shared; its bare writes are
    # the normal construction idiom, not a race.
    assert _fired("""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._value = 0

            def read(self):
                with self._lock:
                    return self._value
    """, SharedMutableStateRule) == []


def test_con401_out_of_scope_module_clean():
    assert _fired(GUARDED_READ_BARE_WRITE, SharedMutableStateRule,
                  module="repro.core.tokens") == []


# -- CON402: lock-order inversion --------------------------------------------

def test_con402_inverted_two_lock_order_flagged():
    # The ISSUE acceptance case: a->b in one method, b->a in another.
    findings = _findings("""
        import threading

        class TwoLocks:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    with self._b:
                        pass

            def backward(self):
                with self._b:
                    with self._a:
                        pass
    """, LockOrderInversionRule)
    assert [finding.rule for finding in findings] == ["CON402"]
    assert "deadlock" in findings[0].message


def test_con402_consistent_order_clean():
    assert _fired("""
        import threading

        class TwoLocks:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def one(self):
                with self._a:
                    with self._b:
                        pass

            def two(self):
                with self._a:
                    with self._b:
                        pass
    """, LockOrderInversionRule) == []


def test_con402_three_lock_cycle_detected_transitively():
    # No single method inverts a pair; the cycle a->b->c->a only
    # appears in the transitive closure of the lock-order graph.
    assert "CON402" in _fired("""
        import threading

        class Ring:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()
                self._c = threading.Lock()

            def one(self):
                with self._a:
                    with self._b:
                        pass

            def two(self):
                with self._b:
                    with self._c:
                        pass

            def three(self):
                with self._c:
                    with self._a:
                        pass
    """, LockOrderInversionRule)


def test_con402_edge_through_helper_method_call():
    # forward() holds a and calls a helper that takes b; backward()
    # nests b then a directly.  The inversion spans a call edge.
    assert _fired("""
        import threading

        class TwoLocks:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    self._grab()

            def _grab(self):
                with self._b:
                    pass

            def backward(self):
                with self._b:
                    with self._a:
                        pass
    """, LockOrderInversionRule) == ["CON402"]


# -- CON403: blocking call under a lock --------------------------------------

def test_con403_direct_sleep_under_lock_flagged():
    findings = _findings("""
        import threading
        import time

        class Pacer:
            def __init__(self):
                self._lock = threading.Lock()

            def pace(self):
                with self._lock:
                    time.sleep(1.0)
    """, BlockingUnderLockRule)
    assert [finding.rule for finding in findings] == ["CON403"]
    message = findings[0].message
    assert "time.sleep()" in message and "self._lock" in message


def test_con403_transitive_through_helper_flagged():
    # The server.py motivating case: the blocking call hides one level
    # down, so the rule must follow the call edge.
    findings = _findings("""
        import subprocess
        import threading

        class Launcher:
            def __init__(self):
                self._lock = threading.Lock()

            def launch(self):
                with self._lock:
                    return self._spawn()

            def _spawn(self):
                return subprocess.run(["true"])
    """, BlockingUnderLockRule)
    assert [finding.rule for finding in findings] == ["CON403"]
    message = findings[0].message
    assert "subprocess.run()" in message and "via" in message


def test_con403_blocking_outside_lock_clean():
    assert _fired("""
        import threading
        import time

        class Pacer:
            def __init__(self):
                self._lock = threading.Lock()

            def pace(self):
                with self._lock:
                    pending = True
                time.sleep(1.0)
    """, BlockingUnderLockRule) == []


def test_con403_queue_get_without_timeout_flagged():
    assert _fired("""
        import queue
        import threading

        class Pump:
            def __init__(self):
                self._lock = threading.Lock()
                self._queue = queue.Queue()

            def drain(self):
                with self._lock:
                    return self._queue.get()
    """, BlockingUnderLockRule) == ["CON403"]


def test_con403_queue_get_with_timeout_clean():
    assert _fired("""
        import queue
        import threading

        class Pump:
            def __init__(self):
                self._lock = threading.Lock()
                self._queue = queue.Queue()

            def drain(self):
                with self._lock:
                    return self._queue.get(timeout=0.5)
    """, BlockingUnderLockRule) == []


# -- CON404: condition wait without predicate loop ---------------------------

def test_con404_bare_wait_flagged():
    findings = _findings("""
        import threading

        class Waiter:
            def __init__(self):
                self._cond = threading.Condition()
                self._ready = False

        def pause(self):
            pass

        class Gate:
            def __init__(self):
                self._cond = threading.Condition()

            def block(self):
                with self._cond:
                    self._cond.wait(0.5)
    """, ConditionWaitRule)
    assert [finding.rule for finding in findings] == ["CON404"]
    assert "wait_for" in findings[0].message


def test_con404_wait_inside_while_clean():
    assert _fired("""
        import threading

        class Gate:
            def __init__(self):
                self._cond = threading.Condition()
                self._open = False

            def block(self):
                with self._cond:
                    while not self._open:
                        self._cond.wait(0.5)
    """, ConditionWaitRule) == []


def test_con404_wait_for_clean():
    assert _fired("""
        import threading

        class Gate:
            def __init__(self):
                self._cond = threading.Condition()
                self._open = False

            def block(self):
                with self._cond:
                    self._cond.wait_for(lambda: self._open, 0.5)
    """, ConditionWaitRule) == []


# -- CON405: unjoined, non-daemon threads ------------------------------------

def test_con405_unjoined_local_thread_flagged():
    findings = _findings("""
        import threading

        def fire():
            worker = threading.Thread(target=print)
            worker.start()
    """, ThreadLeakRule)
    assert [finding.rule for finding in findings] == ["CON405"]
    assert "'worker'" in findings[0].message


def test_con405_unbound_thread_flagged():
    assert _fired("""
        import threading

        def fire():
            threading.Thread(target=print).start()
    """, ThreadLeakRule) == ["CON405"]


def test_con405_daemon_kwarg_clean():
    assert _fired("""
        import threading

        def fire():
            worker = threading.Thread(target=print, daemon=True)
            worker.start()
    """, ThreadLeakRule) == []


def test_con405_daemon_attribute_clean():
    assert _fired("""
        import threading

        def fire():
            worker = threading.Thread(target=print)
            worker.daemon = True
            worker.start()
    """, ThreadLeakRule) == []


def test_con405_joined_in_same_scope_clean():
    assert _fired("""
        import threading

        def fire():
            worker = threading.Thread(target=print)
            worker.start()
            worker.join()
    """, ThreadLeakRule) == []


def test_con405_self_thread_joined_elsewhere_in_class_clean():
    # The service idiom: start() launches the runner thread, stop()
    # joins it — the join lives in a sibling method of the same class.
    assert _fired("""
        import threading

        class Runner:
            def start(self):
                self._thread = threading.Thread(target=print)
                self._thread.start()

            def stop(self):
                self._thread.join()
    """, ThreadLeakRule) == []
