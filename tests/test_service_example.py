"""The runnable example client really runs.

``examples/submit_study.py`` is the documented way to talk to
``repro-serve`` — so it is executed here, end to end, against a live
in-process service: submit, stream, fetch the result, reconcile the
streamed heartbeat counters with the archived trace.
"""

import importlib.util
import json
import os

import pytest

from repro.service import ServiceConfig, StudyService

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLE = os.path.join(REPO_ROOT, "examples", "submit_study.py")


@pytest.fixture(scope="module")
def client():
    spec = importlib.util.spec_from_file_location("submit_study", EXAMPLE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def base(tmp_path_factory):
    service = StudyService(ServiceConfig(
        port=0, jobs_dir=str(tmp_path_factory.mktemp("jobs")),
        runners=1, queue_size=4))
    service.start()
    service.start_in_thread()
    yield "http://127.0.0.1:%d" % service.port
    service.close()


def test_example_end_to_end(client, base, tmp_path, capsys):
    result_path = str(tmp_path / "result.json")
    trace_path = str(tmp_path / "trace.jsonl")
    code = client.main(["--url", base, "--seed", "3", "--sites", "6",
                        "--workers", "2", "--out", result_path,
                        "--save-trace", trace_path])
    out = capsys.readouterr().out
    assert code == 0
    assert "fingerprint: " in out
    assert "reconciliation" in out

    with open(result_path) as fh:
        result = json.load(fh)
    assert len(result["fingerprint"]) == 64
    with open(trace_path) as fh:
        first = json.loads(fh.readline())
    assert first["type"] == "meta"


def test_example_reconcile_flags_mismatches(client):
    streamed = {"crawl.sites": 6.0, "crawl.requests": 40.0}
    archived = {"crawl.sites": 6.0, "crawl.requests": 41.0,
                "other.counter": 1.0}
    mismatches = client.reconcile(streamed, archived)
    assert [name for name, _, _ in mismatches] == ["crawl.requests"]
    assert client.reconcile(archived, archived) == []


def test_example_sse_parser_handles_frames(client, base):
    """The example's SSE parser against the real wire format."""
    status, body = client.request_json(base + "/studies",
                                       payload={"sites": 4, "seed": 2})
    assert status == 202
    frames = list(client.sse_events(
        "%s/studies/%s/events" % (base, body["id"])))
    assert frames[-1]["event"] == "end"
    assert frames[-1]["data"]["state"] == "complete"
    assert all("id" in frame for frame in frames)
