"""Study facade and the randomized population generator."""

import pytest

from repro import Study, StudyConfig, TokenSetConfig
from repro.core import CandidateTokenSet, LeakAnalysis, LeakDetector
from repro.crawler import StudyCrawler
from repro.websim.generator import GeneratorConfig, generate_population


@pytest.fixture(scope="module")
def small_population():
    return generate_population(seed=11, config=GeneratorConfig(
        n_sites=10, n_trackers=5))


def test_study_over_custom_population(small_population):
    result = Study(small_population).run()
    assert result.dataset.status_counts().get("success") == 10
    expected = {domain for domain, site in small_population.sites.items()
                if site.leaking_embeds()}
    assert set(result.analysis.senders()) == expected


def test_study_token_config_respected(small_population):
    config = StudyConfig(token_config=TokenSetConfig(max_depth=1))
    result = Study(small_population, config=config).run()
    assert result.tokens.config.max_depth == 1


def test_generator_deterministic():
    population_a = generate_population(seed=3)
    population_b = generate_population(seed=3)
    assert list(population_a.sites) == list(population_b.sites)
    behaviors_a = [(d, [ (e.service.domain, e.leak) for e in s.embeds])
                   for d, s in population_a.sites.items()]
    behaviors_b = [(d, [ (e.service.domain, e.leak) for e in s.embeds])
                   for d, s in population_b.sites.items()]
    assert behaviors_a == behaviors_b


def test_generator_seeds_differ():
    population_a = generate_population(seed=1)
    population_b = generate_population(seed=2)
    behaviors_a = [e.leak for s in population_a.sites.values()
                   for e in s.embeds]
    behaviors_b = [e.leak for s in population_b.sites.values()
                   for e in s.embeds]
    assert behaviors_a != behaviors_b


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_generated_population_full_detection_recall(seed):
    """Every planted leak is found; no non-leaking site is accused."""
    population = generate_population(seed=seed, config=GeneratorConfig(
        n_sites=8, n_trackers=5))
    dataset = StudyCrawler(population).crawl()
    detector = LeakDetector(CandidateTokenSet(population.persona),
                            catalog=population.catalog,
                            resolver=population.resolver())
    analysis = LeakAnalysis(detector.detect(dataset.log))
    expected = {domain for domain, site in population.sites.items()
                if site.leaking_embeds()
                or site.auth.signup_method == "GET" and site.embeds}
    assert set(analysis.senders()) == expected
    expected_receivers = set()
    for site in population.sites.values():
        expected_receivers.update(site.receiver_domains())
        if site.auth.signup_method == "GET":
            # GET forms put PII in the URL: every embedded third party
            # then receives it in the Referer header (Figure 1.a).
            expected_receivers.update(e.service.domain
                                      for e in site.embeds)
    assert set(analysis.receivers()) == expected_receivers


def test_generated_relationship_channels_match_plan():
    population = generate_population(seed=5, config=GeneratorConfig(
        n_sites=6, n_trackers=4))
    dataset = StudyCrawler(population).crawl()
    detector = LeakDetector(CandidateTokenSet(population.persona),
                            catalog=population.catalog,
                            resolver=population.resolver())
    analysis = LeakAnalysis(detector.detect(dataset.log))
    planned = {}
    for domain, site in population.sites.items():
        for embed in site.leaking_embeds():
            planned[(domain, embed.service.domain)] = \
                set(embed.leak.channels)
    for rel in analysis.relationships():
        assert (rel.sender, rel.receiver) in planned
        assert planned[(rel.sender, rel.receiver)] <= rel.channels


def test_calibrated_study_runs_via_facade():
    result = Study.calibrated().run()
    assert len(result.analysis.senders()) == 130
    assert result.persistence.provider_count == 20
    assert result.table3_counts["disclose_not_specific"] == 102
    assert result.marketing_mail_counts() == {"inbox": 2172, "spam": 141}
    assert result.third_party_mail_senders() == []
