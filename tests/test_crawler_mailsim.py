"""Auth-flow runner outcomes and the simulated mailbox."""

import pytest

from repro.browser import brave
from repro.crawler import (
        STATUS_BLOCKED,
    STATUS_CAPTCHA_FAILED,
    STATUS_NO_AUTH,
    STATUS_SUCCESS,
    STATUS_UNREACHABLE,
    StudyCrawler,
)
from repro.mailsim import (
    EmailMessage,
    FOLDER_INBOX,
    FOLDER_SPAM,
    KIND_CONFIRMATION,
    KIND_MARKETING,
    Mailbox,
)
from repro.websim import (
    BLOCK_PHONE,
    SiteAuthConfig,
    Website,
    build_default_catalog,
)
from repro.websim.population import Population


def _population():
    catalog = build_default_catalog()
    sites = {
        "ok.example": Website(domain="ok.example",
                              marketing_mail=(3, 1)),
        "confirm.example": Website(
            domain="confirm.example",
            auth=SiteAuthConfig(requires_email_confirmation=True)),
        "down.example": Website(domain="down.example",
                                auth=SiteAuthConfig(unreachable=True)),
        "noauth.example": Website(domain="noauth.example",
                                  auth=SiteAuthConfig(has_auth=False)),
        "phone.example": Website(
            domain="phone.example",
            auth=SiteAuthConfig(signup_block=BLOCK_PHONE)),
        "captcha.example": Website(
            domain="captcha.example",
            auth=SiteAuthConfig(captcha_blocks_brave=True)),
        "bot.example": Website(domain="bot.example",
                               auth=SiteAuthConfig(bot_detection=True)),
    }
    return Population(sites=sites, catalog=catalog)


def test_flow_outcomes_per_site_kind():
    population = _population()
    dataset = StudyCrawler(population).crawl()
    statuses = {domain: flow.status
                for domain, flow in dataset.flows.items()}
    assert statuses["ok.example"] == STATUS_SUCCESS
    assert statuses["confirm.example"] == STATUS_SUCCESS
    assert statuses["down.example"] == STATUS_UNREACHABLE
    assert statuses["noauth.example"] == STATUS_NO_AUTH
    assert statuses["phone.example"] == STATUS_BLOCKED
    assert dataset.flows["phone.example"].block_reason == BLOCK_PHONE
    # CAPTCHA solvable under a vanilla browser.
    assert statuses["captcha.example"] == STATUS_SUCCESS


def test_captcha_fails_under_brave():
    population = _population()
    crawler = StudyCrawler(population,
                           profile=brave(population.catalog))
    dataset = crawler.crawl(
        sites=[population.sites["captcha.example"]])
    assert dataset.flows["captcha.example"].status == STATUS_CAPTCHA_FAILED


def test_confirmation_email_consumed():
    population = _population()
    dataset = StudyCrawler(population).crawl(
        sites=[population.sites["confirm.example"]])
    assert dataset.flows["confirm.example"].status == STATUS_SUCCESS
    confirmations = dataset.mailbox.messages(kind=KIND_CONFIRMATION)
    assert len(confirmations) == 1
    assert confirmations[0].sender_domain == "confirm.example"


def test_marketing_mail_after_success():
    population = _population()
    dataset = StudyCrawler(population).crawl(
        sites=[population.sites["ok.example"]])
    counts = dataset.mailbox.counts()
    assert counts[FOLDER_INBOX] == 3
    assert counts[FOLDER_SPAM] == 1


def test_no_marketing_mail_for_failed_flows():
    population = _population()
    dataset = StudyCrawler(population).crawl(
        sites=[population.sites["down.example"]])
    assert len(dataset.mailbox) == 0


def test_crawl_stages_recorded():
    population = _population()
    dataset = StudyCrawler(population).crawl(
        sites=[population.sites["ok.example"]])
    stages = {entry.stage for entry in dataset.log}
    assert {"homepage", "signup", "signin", "reload", "subpage"} <= stages


def test_status_counts_helper():
    population = _population()
    dataset = StudyCrawler(population).crawl()
    counts = dataset.status_counts()
    assert counts[STATUS_SUCCESS] == 4  # ok, confirm, captcha, bot (manual)
    assert sum(counts.values()) == len(population.sites)


def test_automated_crawler_blocked_by_bot_detection():
    from repro.crawler import STATUS_BOT_BLOCKED
    population = _population()
    dataset = StudyCrawler(population, automated=True).crawl(
        sites=[population.sites["ok.example"],
               population.sites["bot.example"]])
    assert dataset.flows["ok.example"].status == STATUS_SUCCESS
    assert dataset.flows["bot.example"].status == STATUS_BOT_BLOCKED


def test_automated_crawler_cannot_confirm_email():
    from repro.crawler import STATUS_CONFIRMATION_FAILED
    population = _population()
    dataset = StudyCrawler(population, automated=True).crawl(
        sites=[population.sites["confirm.example"]])
    assert dataset.flows["confirm.example"].status == \
        STATUS_CONFIRMATION_FAILED
    # The confirmation mail was sent but nobody could read it.
    assert len(dataset.mailbox.messages(kind="confirmation")) == 1


# -- mailbox unit behaviour -------------------------------------------------

def test_mailbox_rejects_foreign_recipient():
    mailbox = Mailbox("me@mail.example")
    with pytest.raises(ValueError):
        mailbox.deliver(EmailMessage(sender_domain="x.example",
                                     recipient="you@mail.example",
                                     subject="s", kind=KIND_MARKETING))


def test_mailbox_latest_confirmation_picks_newest():
    mailbox = Mailbox("me@mail.example")
    mailbox.deliver_confirmation("shop.example", "https://u/1")
    mailbox.deliver_confirmation("shop.example", "https://u/2")
    assert mailbox.latest_confirmation("shop.example").confirm_url == \
        "https://u/2"
    assert mailbox.latest_confirmation("other.example") is None


def test_mailbox_sender_domains_deduplicated():
    mailbox = Mailbox("me@mail.example")
    mailbox.deliver_marketing("a.example", count=3)
    mailbox.deliver_marketing("b.example", count=1, spam=True)
    assert mailbox.sender_domains() == ["a.example", "b.example"]
    assert mailbox.sender_domains(folder=FOLDER_SPAM) == ["b.example"]
