"""Property-based round trips for the HTTP/1.1 wire format."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import Headers, HttpRequest, HttpResponse, Url
from repro.netsim.wire import (
    parse_request,
    parse_response,
    serialize_request,
    serialize_response,
)

_TOKEN = st.text(alphabet=string.ascii_letters + string.digits + "-",
                 min_size=1, max_size=12)
_VALUE = st.text(alphabet=string.ascii_letters + string.digits + " ;=/.",
                 min_size=0, max_size=30).map(str.strip)
_HOSTS = st.builds(lambda a, b: "%s.%s.example" % (a.lower(), b.lower()),
                   _TOKEN, _TOKEN)
_QUERY = st.lists(st.tuples(_TOKEN, _VALUE), max_size=4)
_BODY = st.binary(max_size=64)
_METHOD = st.sampled_from(["GET", "POST", "PUT"])


@given(_METHOD, _HOSTS, _QUERY, _BODY,
       st.lists(st.tuples(_TOKEN, _VALUE), max_size=3))
@settings(max_examples=80, deadline=None)
def test_request_round_trip(method, host, query, body, header_items):
    headers = Headers((name, value) for name, value in header_items
                      if name.lower() not in ("host", "content-length"))
    request = HttpRequest(
        method=method,
        url=Url(scheme="https", host=host, path="/p",
                query=tuple(query)),
        headers=headers, body=body)
    parsed = parse_request(serialize_request(request))
    assert parsed.method == request.method
    assert str(parsed.url) == str(request.url)
    assert parsed.body == request.body
    # Order and multiplicity preserved (duplicate names included).
    assert parsed.headers.items() == headers.items()


@given(st.sampled_from([200, 204, 302, 404, 500]), _BODY,
       st.lists(st.tuples(_TOKEN, _VALUE), max_size=3))
@settings(max_examples=60, deadline=None)
def test_response_round_trip(status, body, header_items):
    headers = Headers((name, value) for name, value in header_items
                      if name.lower() != "content-length")
    response = HttpResponse(status=status, headers=headers, body=body)
    parsed = parse_response(serialize_response(response))
    assert parsed.status == status
    assert parsed.body == body
