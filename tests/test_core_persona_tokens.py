"""Persona surface forms and candidate-token precomputation (§3.1)."""

import pytest

from repro import hashes
from repro.core import CandidateTokenSet, TokenSetConfig
from repro.core.persona import (
    DEFAULT_PERSONA,
    PII_EMAIL,
    PII_NAME,
    PII_TYPES,
    Persona,
)


def test_form_fields_cover_signup_inputs():
    fields = DEFAULT_PERSONA.form_fields()
    for name in ("email", "username", "first_name", "last_name", "phone",
                 "dob", "gender", "job_title", "street", "city",
                 "postcode", "country", "password"):
        assert fields[name]


def test_surface_forms_cover_all_pii_types():
    forms = DEFAULT_PERSONA.surface_forms()
    assert set(forms) == set(PII_TYPES)
    assert DEFAULT_PERSONA.email in forms[PII_EMAIL]
    assert DEFAULT_PERSONA.full_name in forms[PII_NAME]


def test_email_does_not_contain_name_forms():
    # Guards the token-collision property Table 1c depends on.
    email = DEFAULT_PERSONA.email.lower()
    for form in DEFAULT_PERSONA.surface_forms()[PII_NAME]:
        assert form not in email and form.lower() not in email


def test_surface_forms_deduplicated():
    for forms in DEFAULT_PERSONA.surface_forms().values():
        assert len(forms) == len(set(forms))


def test_phone_digit_variant():
    forms = DEFAULT_PERSONA.surface_forms()["phone"]
    assert any(form.isdigit() for form in forms)


# -- Candidate token set -------------------------------------------------------

@pytest.fixture(scope="module")
def token_set():
    return CandidateTokenSet(DEFAULT_PERSONA)


def test_plaintext_email_is_candidate(token_set):
    origins = token_set.origins_of(DEFAULT_PERSONA.email)
    assert any(o.pii_type == PII_EMAIL and o.chain == () for o in origins)


def test_depth1_full_corpus(token_set):
    # Every registry transform appears at depth 1 for the email.
    email = DEFAULT_PERSONA.email
    for name in ("sha256", "whirlpool", "ripemd160", "md4", "base32"):
        token = hashes.apply_chain(email, [name])
        assert any(o.chain == (name,) for o in token_set.origins_of(token))


def test_depth2_chain_from_alphabet(token_set):
    email = DEFAULT_PERSONA.email
    token = hashes.apply_chain(email, ["md5", "sha256"])
    assert token_set.origins_of(token)


def test_depth3_chain(token_set):
    email = DEFAULT_PERSONA.email
    token = hashes.apply_chain(email, ["base64", "sha1", "sha256"])
    assert token_set.origins_of(token)


def test_uppercase_hex_variant_registered(token_set):
    email = DEFAULT_PERSONA.email
    token = hashes.apply_chain(email, ["sha256"]).upper()
    assert token_set.origins_of(token)


def test_short_tokens_dropped():
    config = TokenSetConfig(min_token_length=10)
    token_set = CandidateTokenSet(Persona(gender="other"), config=config)
    assert all(len(token) >= 10 for token in token_set.tokens())


def test_scan_finds_embedded_token(token_set):
    token = hashes.apply_chain(DEFAULT_PERSONA.email, ["sha256"])
    text = "https://t.net/p?uid=%s&x=1" % token
    origins = token_set.scan_distinct(text)
    assert any(o.pii_type == PII_EMAIL and o.chain == ("sha256",)
               for o in origins)


def test_scan_clean_text_empty(token_set):
    assert token_set.scan_distinct("https://t.net/p?uid=nothing") == []
    assert not token_set.contains_leak("benign text")
    assert token_set.scan("") == []


def test_depth_validation():
    with pytest.raises(ValueError):
        TokenSetConfig(max_depth=0)
    with pytest.raises(ValueError):
        TokenSetConfig(max_depth=1, full_corpus_depth=2)
    with pytest.raises(ValueError):
        TokenSetConfig(chain_alphabet=("nonexistent",))


def test_depth1_config_smaller_than_depth3():
    shallow = CandidateTokenSet(DEFAULT_PERSONA,
                                TokenSetConfig(max_depth=1))
    deep = CandidateTokenSet(DEFAULT_PERSONA, TokenSetConfig(max_depth=3))
    assert shallow.token_count < deep.token_count


def test_depth1_misses_multilayer_obfuscation():
    shallow = CandidateTokenSet(DEFAULT_PERSONA,
                                TokenSetConfig(max_depth=1))
    token = hashes.apply_chain(DEFAULT_PERSONA.email, ["md5", "sha256"])
    assert not shallow.origins_of(token)
