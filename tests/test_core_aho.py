"""Aho-Corasick matcher: correctness against naive search."""

import pytest

from repro.core import AhoCorasick


def _naive_matches(text, patterns):
    found = set()
    for pattern in patterns:
        start = 0
        while True:
            index = text.find(pattern, start)
            if index == -1:
                break
            found.add((index, index + len(pattern), pattern))
            start = index + 1
    return found


def test_single_pattern():
    automaton = AhoCorasick()
    automaton.add("abc", 1)
    matches = automaton.find_all("xxabcxxabc")
    assert [(m.start, m.end) for m in matches] == [(2, 5), (7, 10)]


def test_overlapping_patterns():
    automaton = AhoCorasick()
    for pattern in ("he", "she", "his", "hers"):
        automaton.add(pattern, pattern)
    found = {(m.start, m.end, m.pattern)
             for m in automaton.find_all("ushers")}
    assert found == _naive_matches("ushers", ["he", "she", "his", "hers"])


def test_pattern_inside_pattern():
    automaton = AhoCorasick()
    automaton.add("abcd", "long")
    automaton.add("bc", "short")
    found = {m.pattern for m in automaton.find_all("xabcdx")}
    assert found == {"abcd", "bc"}


def test_payload_carried():
    automaton = AhoCorasick()
    automaton.add("token", {"pii": "email"})
    match = automaton.find_all("a token here")[0]
    assert match.payload == {"pii": "email"}
    assert match.pattern == "token"


def test_no_matches():
    automaton = AhoCorasick()
    automaton.add("zzz", None)
    assert automaton.find_all("aaaa") == []
    assert not automaton.contains_any("aaaa")


def test_contains_any_early_exit():
    automaton = AhoCorasick()
    automaton.add("needle", None)
    assert automaton.contains_any("xxneedlexx")


def test_empty_pattern_rejected():
    with pytest.raises(ValueError):
        AhoCorasick().add("", None)


def test_add_after_build_rebuilds():
    automaton = AhoCorasick()
    automaton.add("one", 1)
    assert automaton.contains_any("one")
    automaton.add("two", 2)
    assert automaton.contains_any("two")


def test_duplicate_pattern_distinct_payloads():
    automaton = AhoCorasick()
    automaton.add("dup", "a")
    automaton.add("dup", "b")
    payloads = sorted(m.payload for m in automaton.find_all("dup"))
    assert payloads == ["a", "b"]


def test_len_counts_patterns():
    automaton = AhoCorasick()
    automaton.add("a1", None)
    automaton.add("b2", None)
    assert len(automaton) == 2


def test_matches_against_naive_on_dense_text():
    patterns = ["ab", "ba", "aba", "bab", "aa", "abba"]
    text = "abbaabababbaaab" * 3
    automaton = AhoCorasick()
    for pattern in patterns:
        automaton.add(pattern, None)
    found = {(m.start, m.end, m.pattern) for m in automaton.find_all(text)}
    assert found == _naive_matches(text, patterns)
