"""ProjectIndex: definition indexing, call resolution, argument maps."""

import ast
import textwrap

from repro.statan.callgraph import (
    ProjectIndex,
    function_params,
    map_call_arguments,
)
from repro.statan.engine import ModuleContext


def _ctx(source, path="mod.py", module="repro.service.mod"):
    return ModuleContext(path, textwrap.dedent(source), module=module)


def _calls(ctx):
    """Every ast.Call in the module, source order."""
    return [node for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call)]


# -- construction ------------------------------------------------------------

def test_index_contains_functions_and_methods():
    ctx = _ctx("""
        def top():
            pass

        class Thing:
            def method(self):
                pass
    """)
    index = ProjectIndex([ctx])
    assert len(index) == 2
    top = index.get("repro.service.mod.top")
    assert top is not None and top.class_name is None
    method = index.get("repro.service.mod.Thing.method")
    assert method is not None
    assert method.class_name == "Thing" and method.is_method


def test_nested_defs_are_not_indexed():
    ctx = _ctx("""
        def outer():
            def inner():
                pass
            return inner
    """)
    index = ProjectIndex([ctx])
    assert len(index) == 1
    assert index.get("repro.service.mod.outer.inner") is None


def test_functions_listing_is_qualname_sorted():
    ctx = _ctx("""
        def zeta():
            pass

        def alpha():
            pass
    """)
    names = [info.name for info in ProjectIndex([ctx]).functions()]
    assert names == ["alpha", "zeta"]


# -- resolve_call ------------------------------------------------------------

def test_resolve_module_local_call():
    ctx = _ctx("""
        def helper():
            pass

        def caller():
            helper()
    """)
    index = ProjectIndex([ctx])
    (call,) = _calls(ctx)
    info = index.resolve_call(ctx, call)
    assert info is not None
    assert info.qualname == "repro.service.mod.helper"


def test_resolve_imported_name_across_files():
    lib = _ctx("""
        def atomic_write_text(path, text):
            pass
    """, path="checkpoint.py", module="repro.crawler.checkpoint")
    user = _ctx("""
        from repro.crawler.checkpoint import atomic_write_text

        def save():
            atomic_write_text("p", "t")
    """, path="store.py", module="repro.service.store")
    index = ProjectIndex([lib, user])
    (call,) = _calls(user)
    info = index.resolve_call(user, call)
    assert info is not None
    assert info.qualname == "repro.crawler.checkpoint.atomic_write_text"


def test_resolve_relative_import_via_unique_suffix():
    # ``from ..crawler.checkpoint import f`` records a dotted target
    # without its package root; only the unique-suffix pass can match.
    lib = _ctx("""
        def atomic_write_text(path, text):
            pass
    """, path="checkpoint.py", module="repro.crawler.checkpoint")
    user = _ctx("""
        from ..crawler.checkpoint import atomic_write_text

        def save():
            atomic_write_text("p", "t")
    """, path="store.py", module="repro.service.store")
    index = ProjectIndex([lib, user])
    (call,) = _calls(user)
    info = index.resolve_call(user, call)
    assert info is not None
    assert info.qualname == "repro.crawler.checkpoint.atomic_write_text"


def test_resolve_self_method_needs_class_name():
    ctx = _ctx("""
        class Thing:
            def helper(self):
                pass

            def caller(self):
                self.helper()
    """)
    index = ProjectIndex([ctx])
    (call,) = _calls(ctx)
    assert index.resolve_call(ctx, call) is None
    info = index.resolve_call(ctx, call, class_name="Thing")
    assert info is not None
    assert info.qualname == "repro.service.mod.Thing.helper"


def test_resolve_unknown_name_is_none():
    ctx = _ctx("""
        def caller():
            mystery()
    """)
    index = ProjectIndex([ctx])
    (call,) = _calls(ctx)
    assert index.resolve_call(ctx, call) is None


def test_ambiguous_suffix_does_not_resolve():
    # Two modules define run(); a bare dotted suffix must not guess.
    one = _ctx("def run():\n    pass\n", path="a.py",
               module="repro.service.a")
    two = _ctx("def run():\n    pass\n", path="b.py",
               module="repro.crawler.b")
    user = _ctx("""
        from other.place import run

        def caller():
            run()
    """, path="c.py", module="repro.service.c")
    index = ProjectIndex([one, two, user])
    (call,) = _calls(user)
    assert index.resolve_call(user, call) is None


# -- resolve_fuzzy -----------------------------------------------------------

def test_fuzzy_resolves_unique_method_name():
    lib = _ctx("""
        class Shard:
            def run_shard_job(self):
                pass
    """, path="worker.py", module="repro.crawler.worker")
    user = _ctx("""
        def caller(shard):
            shard.run_shard_job()
    """, path="use.py", module="repro.service.use")
    index = ProjectIndex([lib, user])
    (call,) = _calls(user)
    info = index.resolve_fuzzy(call)
    assert info is not None
    assert info.qualname == "repro.crawler.worker.Shard.run_shard_job"


def test_fuzzy_refuses_ambiguous_names():
    one = _ctx("class A:\n    def go(self):\n        pass\n",
               path="a.py", module="repro.service.a")
    two = _ctx("class B:\n    def go(self):\n        pass\n",
               path="b.py", module="repro.service.b")
    user = _ctx("""
        def caller(thing):
            thing.go()
    """, path="c.py", module="repro.service.c")
    index = ProjectIndex([one, two, user])
    (call,) = _calls(user)
    assert index.resolve_fuzzy(call) is None


# -- parameter/argument helpers ----------------------------------------------

def _first_def(source):
    tree = ast.parse(textwrap.dedent(source))
    return tree.body[0]


def test_function_params_strips_self():
    node = _first_def("""
        class C:
            def m(self, a, b, *, c):
                pass
    """).body[0]
    assert function_params(node) == ["a", "b", "c"]


def test_function_params_plain_function():
    node = _first_def("def f(x, y=1):\n    pass\n")
    assert function_params(node) == ["x", "y"]


def test_map_call_arguments_positional_and_keyword():
    call = ast.parse("f(1, b=2)").body[0].value
    pairs = map_call_arguments(call, ["a", "b"])
    assert [(name, type(expr).__name__) for name, expr in pairs] == \
        [("a", "Constant"), ("b", "Constant")]


def test_map_call_arguments_skips_starred_and_overflow():
    call = ast.parse("f(*args, 1)").body[0].value
    assert map_call_arguments(call, ["a", "b"]) == []
    overflow = ast.parse("f(1, 2, 3)").body[0].value
    assert [name for name, _ in map_call_arguments(overflow, ["a"])] == \
        ["a"]
