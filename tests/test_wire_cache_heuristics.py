"""HTTP wire format, caching resolver, heuristic detection."""

import hashlib

import pytest

from repro.core.heuristics import (
    HeuristicDetector,
    looks_like_identifier,
    suspicious_parameter,
)
from repro.dnssim import DnsError, Resolver, Zone
from repro.dnssim.cache import CachingResolver
from repro.netsim import (
    CaptureEntry,
    CaptureLog,
    Headers,
    HttpRequest,
    HttpResponse,
    Url,
)
from repro.netsim.wire import (
    WireFormatError,
    parse_request,
    parse_response,
    serialize_request,
    serialize_response,
)


# -- wire format --------------------------------------------------------------

def test_request_round_trip():
    request = HttpRequest(
        method="POST",
        url=Url.parse("https://t.example/collect?uid=abc&ev=1"),
        headers=Headers([("Referer", "https://www.shop.example/"),
                         ("Content-Type",
                          "application/x-www-form-urlencoded")]),
        body=b"u_hem=deadbeef")
    raw = serialize_request(request)
    assert raw.startswith(b"POST /collect?uid=abc&ev=1 HTTP/1.1\r\n")
    assert b"Host: t.example\r\n" in raw
    assert b"Content-Length: 14\r\n" in raw
    parsed = parse_request(raw)
    assert parsed.method == "POST"
    assert str(parsed.url) == str(request.url)
    assert parsed.body == request.body
    assert parsed.headers.get("Referer") == "https://www.shop.example/"


def test_response_round_trip():
    response = HttpResponse(
        status=302,
        headers=Headers([("Location", "/next"),
                         ("Set-Cookie", "a=1"), ("Set-Cookie", "b=2")]),
        body=b"")
    raw = serialize_response(response)
    assert raw.startswith(b"HTTP/1.1 302 Found\r\n")
    parsed = parse_response(raw)
    assert parsed.status == 302
    assert parsed.set_cookie_headers == ["a=1", "b=2"]


def test_body_bytes_exact():
    request = HttpRequest(method="POST",
                          url=Url.parse("https://t.example/p"),
                          body=b"\x00\x01binary\xff")
    parsed = parse_request(serialize_request(request))
    assert parsed.body == b"\x00\x01binary\xff"


def test_parse_rejects_garbage():
    with pytest.raises(WireFormatError):
        parse_request(b"not an http message")
    with pytest.raises(WireFormatError):
        parse_request(b"GET /\r\n\r\n")  # malformed request line
    with pytest.raises(WireFormatError):
        parse_request(b"GET / HTTP/1.1\r\n\r\n")  # no Host
    with pytest.raises(WireFormatError):
        parse_response(b"HTTP/1.1 abc\r\n\r\n")


def test_truncated_body_rejected():
    raw = (b"POST /p HTTP/1.1\r\nHost: t.example\r\n"
           b"Content-Length: 100\r\n\r\nshort")
    with pytest.raises(WireFormatError):
        parse_request(raw)


# -- caching resolver -----------------------------------------------------------

class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class _CountingResolver(Resolver):
    def __init__(self, zone):
        super().__init__(zone)
        self.calls = 0

    def resolve(self, name):
        self.calls += 1
        return super().resolve(name)


@pytest.fixture()
def cached_setup():
    zone = Zone()
    zone.add_a("www.shop.example")
    zone.add_cname("metrics.shop.example", "shop.example.sc.omtrdc.net")
    zone.add_a("shop.example.sc.omtrdc.net")
    upstream = _CountingResolver(zone)
    clock = _Clock()
    return CachingResolver(upstream, clock, ttl=100,
                           negative_ttl=10), upstream, clock


def test_positive_caching(cached_setup):
    resolver, upstream, clock = cached_setup
    first = resolver.resolve("www.shop.example")
    second = resolver.resolve("www.shop.example")
    assert first == second
    assert upstream.calls == 1
    assert resolver.stats.hits == 1 and resolver.stats.misses == 1


def test_expiry_refetches(cached_setup):
    resolver, upstream, clock = cached_setup
    resolver.resolve("www.shop.example")
    clock.now = 101.0
    resolver.resolve("www.shop.example")
    assert upstream.calls == 2


def test_negative_caching(cached_setup):
    resolver, upstream, clock = cached_setup
    with pytest.raises(DnsError):
        resolver.resolve("missing.example")
    with pytest.raises(DnsError):
        resolver.resolve("missing.example")
    assert upstream.calls == 1
    assert resolver.stats.negative_hits == 1
    clock.now = 11.0
    with pytest.raises(DnsError):
        resolver.resolve("missing.example")
    assert upstream.calls == 2


def test_resolver_interface_parity(cached_setup):
    resolver, _, _ = cached_setup
    assert resolver.exists("www.shop.example")
    assert not resolver.exists("missing.example")
    assert resolver.cname_chain("metrics.shop.example") == \
        ("shop.example.sc.omtrdc.net",)


def test_flush(cached_setup):
    resolver, upstream, _ = cached_setup
    resolver.resolve("www.shop.example")
    resolver.flush()
    resolver.resolve("www.shop.example")
    assert upstream.calls == 2


def test_ttl_validation(cached_setup):
    _, upstream, clock = cached_setup
    with pytest.raises(ValueError):
        CachingResolver(upstream, clock, ttl=0)


def test_caching_resolver_works_in_browser(study_spec):
    from repro.browser import Browser, SimClock, vanilla_firefox
    from repro.crawler import AuthFlowRunner
    from repro.mailsim import Mailbox
    population = study_spec.population
    clock = SimClock()
    cached = CachingResolver(population.resolver(), clock.now)
    mailbox = Mailbox(population.persona.email)
    server = population.build_server(
        mail_hook=lambda s, e, u: mailbox.deliver_confirmation(s, u))
    browser = Browser(profile=vanilla_firefox(), server=server,
                      resolver=cached, catalog=population.catalog,
                      clock=clock)
    site = population.sites[study_spec.leaking_domains[3]]
    runner = AuthFlowRunner(browser, population.persona, mailbox)
    result = runner.run(site)
    assert result.succeeded
    assert cached.stats.hits > cached.stats.misses


# -- heuristics -------------------------------------------------------------------

def test_suspicious_parameter_names():
    for name in ("email_sha256", "hashed_email", "u_hem", "udff[em]",
                 "uid", "em", "user_id", "md5email"):
        assert suspicious_parameter(name), name
    for name in ("ev", "dl", "color", "page", "q"):
        assert not suspicious_parameter(name), name


def test_looks_like_identifier():
    sha256 = hashlib.sha256(b"x").hexdigest()
    assert looks_like_identifier(sha256)
    assert looks_like_identifier(sha256.upper())
    assert looks_like_identifier("q0J5n1z8K3v7B2m4X6c8L0d2F4g6H8j0")
    assert not looks_like_identifier("hello")
    assert not looks_like_identifier("12345")
    assert not looks_like_identifier("aaaaaaaaaaaaaaaaaaaaaaaa")  # low entropy


def _entry(url, site="shop.example"):
    return CaptureEntry(
        request=HttpRequest(method="GET", url=Url.parse(url)),
        response=HttpResponse(), site=site, stage="signup",
        page_url="https://www.shop.example/")


def test_heuristic_flags_salted_hash():
    # A salted hash: the exact detector cannot know this token.
    salted = hashlib.sha256(b"salt||user@mail.example").hexdigest()
    detector = HeuristicDetector()
    findings = detector.detect_entry(
        _entry("https://t.example/p?email_sha256=%s" % salted))
    assert len(findings) == 1
    assert findings[0].parameter == "email_sha256"
    assert findings[0].confidence == "suspected"


def test_heuristic_ignores_first_party():
    salted = hashlib.sha256(b"x").hexdigest()
    detector = HeuristicDetector()
    assert detector.detect_entry(
        _entry("https://www.shop.example/p?email_sha256=%s" % salted)) == []


def test_heuristic_excludes_known_tokens():
    token = hashlib.sha256(b"known").hexdigest()
    detector = HeuristicDetector(known_tokens={token})
    assert detector.detect_entry(
        _entry("https://t.example/p?uid=%s" % token)) == []


def test_heuristic_requires_identifier_shaped_value():
    detector = HeuristicDetector()
    assert detector.detect_entry(
        _entry("https://t.example/p?uid=short")) == []


def test_heuristic_over_log():
    salted = hashlib.sha256(b"salted").hexdigest()
    log = CaptureLog()
    log.record(_entry("https://t.example/p?u_hem=%s" % salted))
    log.record(_entry("https://t.example/p?ev=PageView"))
    detector = HeuristicDetector()
    assert len(detector.detect(log)) == 1
