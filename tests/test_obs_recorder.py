"""repro.obs unit surface: clocks, metrics, spans, merge, export, CLI."""

import json
import pickle

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TickClock,
    TraceError,
    WallClock,
    merge_recorders,
    read_trace,
    summarize_recorder,
    summarize_trace,
    trace_lines,
    write_trace,
)
from repro.obs.cli import EXIT_ERROR, EXIT_OK, main

# -- clocks --------------------------------------------------------------


def test_tick_clock_is_deterministic():
    clock = TickClock()
    assert [clock.now() for _ in range(3)] == [0.0, 1.0, 2.0]
    assert TickClock(start=5.0, step=0.5).now() == 5.0


def test_tick_clock_rejects_nonpositive_step():
    with pytest.raises(ValueError):
        TickClock(step=0.0)


def test_wall_clock_advances():
    clock = WallClock()
    assert clock.now() <= clock.now()


# -- metrics -------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    recorder = Recorder()
    recorder.count("a")
    recorder.count("a", 4)
    recorder.gauge("g", 1.0)
    recorder.gauge("g", 2.0)
    recorder.observe("h", 0.01)
    recorder.observe("h", 100.0)
    snap = recorder.snapshot()
    assert snap["counters"] == {"a": 5}
    assert snap["gauges"] == {"g": 2.0}
    hist = snap["histograms"][0]
    assert hist["count"] == 2
    assert hist["min"] == 0.01 and hist["max"] == 100.0


def test_histogram_bucketing_and_merge():
    h1 = Histogram("h")
    h2 = Histogram("h")
    for value in (0.0005, 0.01, 2.0):
        h1.observe(value)
    h2.observe(5000.0)  # beyond the last bound -> overflow bucket
    h1.merge(h2)
    assert h1.count == 4
    assert h1.bucket_counts[-1] == 1
    assert sum(h1.bucket_counts) == h1.count
    assert h1.mean == pytest.approx((0.0005 + 0.01 + 2.0 + 5000.0) / 4)


def test_histogram_merge_rejects_mismatched_bounds():
    with pytest.raises(ValueError):
        Histogram("h").merge(Histogram("h", bounds=(1.0, 2.0)))


# -- span tree -----------------------------------------------------------


def test_span_nesting_and_explicit_times():
    recorder = Recorder()
    with recorder.span("study"):
        with recorder.span("crawl", kind="stage"):
            recorder.add_span("site", start=10.0, end=12.5, domain="a.shop")
    (root,) = recorder.roots
    assert root.name == "study" and root.end is not None
    (crawl,) = root.children
    (site,) = crawl.children
    assert site.duration == 2.5
    assert site.attrs == {"domain": "a.shop"}
    assert recorder.open_span_count == 0


def test_span_contextmanager_unwinds_leaked_opens():
    recorder = Recorder()
    with recorder.span("outer"):
        recorder.start_span("leaked")  # never explicitly ended
    assert recorder.open_span_count == 0
    (outer,) = recorder.roots
    assert all(span.end is not None for span, _ in outer.walk())


def test_span_contextmanager_closes_on_exception():
    recorder = Recorder()
    with pytest.raises(RuntimeError):
        with recorder.span("outer"):
            raise RuntimeError("boom")
    assert recorder.open_span_count == 0
    assert recorder.roots[0].end is not None


def test_end_span_without_open_raises():
    with pytest.raises(RuntimeError):
        Recorder().end_span()


def test_walk_is_depth_first():
    recorder = Recorder()
    with recorder.span("a"):
        with recorder.span("b"):
            recorder.add_span("c", start=0.0, end=0.0)
        recorder.add_span("d", start=0.0, end=0.0)
    names = [span.name for span, _ in recorder.all_spans()]
    assert names == ["a", "b", "c", "d"]
    assert recorder.span_count() == 4


# -- null recorder -------------------------------------------------------


def test_null_recorder_records_nothing():
    recorder = NullRecorder()
    recorder.count("x")
    recorder.gauge("g", 1.0)
    recorder.observe("h", 1.0)
    with recorder.span("s"):
        recorder.add_span("t", start=0.0, end=1.0)
    assert recorder.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": [], "spans": []}
    assert not NULL_RECORDER.enabled


def test_adopting_a_null_recorder_is_a_noop():
    recorder = Recorder()
    recorder.adopt(NULL_RECORDER)
    assert recorder.snapshot() == Recorder().snapshot()


# -- merge determinism ---------------------------------------------------


def _shard_recorder(index):
    recorder = Recorder()
    with recorder.span("shard", index=index):
        recorder.add_span("site", start=float(index), end=float(index) + 1)
    recorder.count("crawl.sites")
    recorder.observe("h", float(index))
    return recorder


def test_merge_recorders_is_order_deterministic():
    """Merging the same recorders in the same order is reproducible no
    matter which 'worker' produced them — the adopt() contract."""
    shards = [_shard_recorder(i) for i in range(4)]
    merged_a = merge_recorders(shards).snapshot()
    merged_b = merge_recorders([pickle.loads(pickle.dumps(r))
                                for r in shards]).snapshot()
    assert merged_a == merged_b
    assert merged_a["counters"] == {"crawl.sites": 4}
    assert [s["attrs"]["index"] for s in merged_a["spans"]] == [0, 1, 2, 3]


def test_adopt_grafts_under_current_span():
    recorder = Recorder()
    with recorder.span("crawl"):
        recorder.adopt(_shard_recorder(7))
    (crawl,) = recorder.roots
    assert [child.name for child in crawl.children] == ["shard"]


# -- picklability (the PKL301-303 currency) ------------------------------


def test_recorder_pickles_round_trip():
    recorder = _shard_recorder(3)
    clone = pickle.loads(pickle.dumps(recorder))
    assert clone.snapshot() == recorder.snapshot()
    # The clone keeps working after the round trip.
    clone.count("more")
    with clone.span("later"):
        pass
    assert clone.counters["more"].value == 1


# -- export / import -----------------------------------------------------


def test_trace_lines_are_stable_json():
    recorder = _shard_recorder(0)
    lines_a = list(trace_lines(recorder))
    lines_b = list(trace_lines(recorder))
    assert lines_a == lines_b
    meta = json.loads(lines_a[0])
    assert meta == {"type": "meta", "schema": 1, "kind": "repro-trace"}


def test_write_read_round_trip(tmp_path):
    recorder = _shard_recorder(2)
    path = str(tmp_path / "t.jsonl")
    assert write_trace(recorder, path) == path
    records = read_trace(path)
    assert len(records["span"]) == recorder.span_count()
    assert records["counter"] == [{"type": "counter", "name": "crawl.sites",
                                   "value": 1}]
    # Depth-first order with explicit paths.
    assert records["span"][0]["path"] == [0]
    assert records["span"][1]["path"] == [0, 0]


def test_read_trace_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    with pytest.raises(TraceError):
        read_trace(str(path))


def test_read_trace_requires_meta_header(tmp_path):
    path = tmp_path / "headerless.jsonl"
    path.write_text('{"type":"counter","name":"a","value":1}\n')
    with pytest.raises(TraceError):
        read_trace(str(path))


def test_read_trace_rejects_unknown_record_type(tmp_path):
    path = tmp_path / "odd.jsonl"
    path.write_text('{"type":"mystery"}\n')
    with pytest.raises(TraceError):
        read_trace(str(path))


def test_summaries_agree_between_file_and_live_recorder(tmp_path):
    recorder = _shard_recorder(1)
    path = str(tmp_path / "t.jsonl")
    write_trace(recorder, path)
    assert summarize_trace(read_trace(path)) == summarize_recorder(recorder)


# -- repro-trace CLI -----------------------------------------------------


def test_cli_summarize(tmp_path, capsys):
    recorder = _shard_recorder(5)
    path = str(tmp_path / "t.jsonl")
    write_trace(recorder, path)
    assert main(["summarize", path]) == EXIT_OK
    out = capsys.readouterr().out
    assert "span breakdown" in out and "crawl.sites" in out


def test_cli_summarize_missing_file(tmp_path, capsys):
    assert main(["summarize", str(tmp_path / "nope.jsonl")]) == EXIT_ERROR
    assert "repro-trace: error" in capsys.readouterr().err


def test_cli_summarize_bad_trace(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    path.write_text("{broken\n")
    assert main(["summarize", str(path)]) == EXIT_ERROR
    assert "repro-trace: error" in capsys.readouterr().err


def test_cli_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
