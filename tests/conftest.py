"""Shared fixtures.

The calibrated crawl is expensive (~20 s), so everything derived from it
is session-scoped: one crawl, one detection pass, shared by every
integration test.
"""

from __future__ import annotations

import pytest

from repro.core import CandidateTokenSet, LeakAnalysis, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.websim.shopping import build_study_population


@pytest.fixture(scope="session")
def study_spec():
    """The calibrated 404-site population."""
    return build_study_population()


@pytest.fixture(scope="session")
def crawl(study_spec):
    """The main (vanilla Firefox) crawl over the calibrated population."""
    return StudyCrawler(study_spec.population).crawl()


@pytest.fixture(scope="session")
def tokens():
    """The default persona's candidate token set."""
    return CandidateTokenSet(DEFAULT_PERSONA)


@pytest.fixture(scope="session")
def detector(study_spec, tokens):
    return LeakDetector(tokens, catalog=study_spec.catalog,
                        resolver=study_spec.population.resolver())


@pytest.fixture(scope="session")
def events(crawl, detector):
    return detector.detect(crawl.log)


@pytest.fixture(scope="session")
def analysis(events):
    return LeakAnalysis(events)
