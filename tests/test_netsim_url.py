"""URL model: parsing, serialization, query multimap, joins."""

import pytest

from repro.netsim import Url, decode_query, encode_query, percent_decode, \
    percent_encode


def test_parse_full_url():
    url = Url.parse("https://www.shop.com:8443/a/b?x=1&y=2#frag")
    assert url.scheme == "https"
    assert url.host == "www.shop.com"
    assert url.port == 8443
    assert url.path == "/a/b"
    assert url.query == (("x", "1"), ("y", "2"))
    assert url.fragment == "frag"


def test_str_round_trip():
    text = "https://www.shop.com/signup?email=foo%40mydom.com&n=1"
    assert str(Url.parse(text)) == text


def test_parse_requires_absolute():
    with pytest.raises(ValueError):
        Url.parse("/relative/path")


def test_unsupported_scheme_rejected():
    with pytest.raises(ValueError):
        Url(scheme="ftp", host="x.com")


def test_host_required():
    with pytest.raises(ValueError):
        Url(scheme="https", host="")


def test_default_path_and_origin():
    url = Url.parse("https://shop.com")
    assert url.path == "/"
    assert url.origin == "https://shop.com"


def test_origin_includes_port():
    assert Url.parse("http://h.com:8080/x").origin == "http://h.com:8080"


def test_query_is_ordered_multimap():
    url = Url.parse("https://t.net/p?a=1&b=2&a=3")
    assert url.query_get("a") == "1"
    assert url.query_all("a") == ["1", "3"]
    assert url.query_get("missing") is None
    assert url.query_dict() == {"a": "3", "b": "2"}


def test_adding_and_replacing_query():
    url = Url.parse("https://t.net/p?a=1")
    extended = url.adding_query([("b", "2")])
    assert extended.query == (("a", "1"), ("b", "2"))
    replaced = url.with_query([("z", "9")])
    assert replaced.query == (("z", "9"),)
    assert url.query == (("a", "1"),)  # original untouched


def test_without_query():
    url = Url.parse("https://t.net/p?a=1#f")
    stripped = url.without_query()
    assert stripped.query == () and stripped.fragment == ""


def test_join_absolute():
    base = Url.parse("https://shop.com/a/b")
    assert str(base.join("https://other.net/x")) == "https://other.net/x"


def test_join_path_absolute():
    base = Url.parse("https://shop.com/a/b?q=1")
    joined = base.join("/account/login?next=home")
    assert str(joined) == "https://shop.com/account/login?next=home"


def test_join_relative():
    base = Url.parse("https://shop.com/a/b")
    assert base.join("c").path == "/a/c"


def test_percent_encoding_of_query_values():
    url = Url(host="t.net", query=(("email", "foo@mydom.com"),))
    assert "email=foo%40mydom.com" in str(url)


def test_percent_round_trip():
    original = "foo@mydom.com & name=Alex Romero/100%"
    assert percent_decode(percent_encode(original)) == original


def test_percent_decode_plus_as_space():
    assert percent_decode("Alex+Romero") == "Alex Romero"


def test_percent_decode_tolerates_malformed():
    assert percent_decode("100%zz") == "100%zz"
    assert percent_decode("%") == "%"


def test_encode_decode_query_round_trip():
    pairs = [("email", "foo@mydom.com"), ("n", "a b"), ("n", "c&d")]
    assert decode_query(encode_query(pairs)) == pairs


def test_decode_query_empty_and_bare_keys():
    assert decode_query("") == []
    assert decode_query("a&b=1") == [("a", ""), ("b", "1")]


def test_host_lowercased_on_parse():
    assert Url.parse("https://WWW.Shop.COM/x").host == "www.shop.com"
