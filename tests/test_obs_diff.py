"""Trace diffing: alignment, deltas, --fail-on gating, CLI exit codes.

The acceptance contract: diffing two traces of the *same* seed and
config yields an empty delta and exit 0; diffing two *different* seeds
reports counter deltas and exits nonzero under ``--fail-on``.
"""

import json

import pytest

from repro.core import Study, StudyConfig
from repro.crawler import GeneratedPopulationSpec
from repro.obs import (
    FailOnError,
    diff_traces,
    parse_fail_on,
    read_trace,
    render_diff,
    write_trace,
)
from repro.obs.cli import main as trace_main
from repro.obs.diff import TimingDelta, TraceDiff
from repro.websim.generator import GeneratorConfig

_CONFIG = GeneratorConfig(n_sites=8, n_trackers=4, leak_probability=0.6,
                          confirmation_probability=0.4)


def _trace_path(tmp_path, seed, name):
    """Crawl+analyze one small traced study; return its trace path."""
    spec = GeneratedPopulationSpec(seed=seed, config=_CONFIG)
    config = StudyConfig().with_observability()
    study = Study(spec.build(), config=config, population_spec=spec)
    study.run()
    path = str(tmp_path / name)
    write_trace(config.recorder, path)
    return path


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    """Three traces: seed 0 twice (identical) and seed 1 (drifted)."""
    tmp_path = tmp_path_factory.mktemp("traces")
    return {
        "a": _trace_path(tmp_path, 0, "a.jsonl"),
        "a2": _trace_path(tmp_path, 0, "a2.jsonl"),
        "b": _trace_path(tmp_path, 1, "b.jsonl"),
    }


# -- the diff itself -----------------------------------------------------


def test_same_seed_traces_diff_empty(traces):
    diff = diff_traces(read_trace(traces["a"]), read_trace(traces["a2"]))
    assert diff.is_empty
    assert diff.counters == [] and diff.added == [] and diff.removed == []
    assert render_diff(diff) == \
        "traces are observably identical (empty delta)"


def test_different_seed_traces_report_counter_deltas(traces):
    diff = diff_traces(read_trace(traces["a"]), read_trace(traces["b"]))
    assert not diff.is_empty
    names = {delta.name for delta in diff.counters}
    assert any(name.startswith("crawl.") for name in names)
    rendered = render_diff(diff, "a", "b")
    assert "counters:" in rendered


def test_diff_as_dict_round_trips_through_json(traces):
    diff = diff_traces(read_trace(traces["a"]), read_trace(traces["b"]))
    document = json.loads(json.dumps(diff.as_dict()))
    assert document["empty"] is False
    assert {d["kind"] for d in document["counters"]} == {"counter"}


def test_alignment_is_stable_under_subtree_insertion():
    """Inserting one site early must not misalign every later span."""
    def span(name, path, start, end, **attrs):
        return {"type": "span", "name": name, "path": path,
                "start": start, "end": end, "attrs": attrs}

    base = [span("crawl", [0], 0, 10, kind="stage"),
            span("site", [0, 0], 0, 4, domain="x.com"),
            span("site", [0, 1], 4, 10, domain="y.com")]
    shifted = [span("crawl", [0], 0, 12, kind="stage"),
               span("site", [0, 0], 0, 2, domain="new.net"),
               span("site", [0, 1], 2, 6, domain="x.com"),
               span("site", [0, 2], 6, 12, domain="y.com")]
    diff = diff_traces({"span": base, "counter": [], "gauge": [],
                        "histogram": []},
                       {"span": shifted, "counter": [], "gauge": [],
                        "histogram": []})
    # The one new site is the only structural change ...
    assert [change.key for change in diff.added] == \
        ["/crawl[kind=stage]/site[domain=new.net]"]
    assert diff.removed == []
    # ... and x.com/y.com aligned by domain, not by position.
    matched = {d.name: d for d in diff.spans}
    assert matched["site"].a_count == matched["site"].b_count == 2


def test_removed_subtrees_report_topmost_root_only():
    def span(name, path, **attrs):
        return {"type": "span", "name": name, "path": path,
                "start": 0, "end": 1, "attrs": attrs}

    full = [span("crawl", [0], kind="stage"),
            span("site", [0, 0], domain="x.com"),
            span("request", [0, 0, 0], host="t.net"),
            span("request", [0, 0, 1], host="u.net")]
    empty = [span("crawl", [0], kind="stage")]
    diff = diff_traces({"span": full, "counter": [], "gauge": [],
                        "histogram": []},
                       {"span": empty, "counter": [], "gauge": [],
                        "histogram": []})
    assert [change.key for change in diff.removed] == \
        ["/crawl[kind=stage]/site[domain=x.com]"]
    assert diff.removed[0].spans == 3   # site + its two requests


# -- --fail-on parsing and gating ----------------------------------------


def test_parse_fail_on_grammar():
    cond = parse_fail_on("stage_time>20%")
    assert (cond.kind, cond.pattern, cond.op) == ("stage_time", "*", ">")
    assert cond.percent and cond.limit == pytest.approx(0.2)

    cond = parse_fail_on("stage_time:detect>0.5")
    assert cond.pattern == "detect" and not cond.percent
    assert cond.limit == 0.5

    cond = parse_fail_on("counter:leaks_detected!=0")
    assert (cond.kind, cond.pattern, cond.op) == \
        ("counter", "leaks_detected", "!=")

    assert parse_fail_on("counter:*!=0").pattern == "*"
    assert parse_fail_on("spans!=0").kind == "spans"
    assert parse_fail_on("histogram:*.count!=0").kind == "histogram"
    assert parse_fail_on("gauge:shards.total>=1").op == ">="


@pytest.mark.parametrize("bad", [
    "stage_time",                   # no operator
    "counter:x>abc",                # not a number
    "bogus:x!=0",                   # unknown kind
    "spans:detect!=0",              # spans takes no name
    "counter:x>20%",                # % only applies to stage_time
])
def test_parse_fail_on_rejects_bad_specs(bad):
    with pytest.raises(FailOnError):
        parse_fail_on(bad)


@pytest.mark.parametrize("bad", [
    "stage_time", "counter:x>abc", "bogus:x!=0", "spans:detect!=0",
    "counter:x>20%",
])
def test_parse_fail_on_errors_echo_the_grammar(bad):
    """Every rejection teaches the full spec grammar: the offending
    spec, the specific reason, and what would have been accepted."""
    from repro.obs import FAIL_ON_GRAMMAR
    with pytest.raises(FailOnError) as excinfo:
        parse_fail_on(bad)
    message = str(excinfo.value)
    assert repr(bad) in message
    assert FAIL_ON_GRAMMAR in message
    assert "stage_time>20%" in message     # a worked example rides along


def test_truncated_trailing_trace_line_is_skipped_with_warning(traces,
                                                               tmp_path):
    """A trace writer killed mid-append loses at most its final line;
    the loader salvages the rest instead of refusing the whole file."""
    intact = read_trace(traces["a"])
    torn = str(tmp_path / "torn.jsonl")
    with open(traces["a"]) as handle:
        content = handle.read()
    with open(torn, "w") as handle:
        handle.write(content)
        handle.write('{"type": "counter", "name": "cut')
    with pytest.warns(UserWarning, match="truncated"):
        salvaged = read_trace(torn)
    assert salvaged == intact


def test_malformed_interior_trace_line_still_raises(traces, tmp_path):
    from repro.obs import TraceError
    lines = open(traces["a"]).read().splitlines()
    lines.insert(1, "definitely not json")
    path = str(tmp_path / "corrupt.jsonl")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(TraceError):
        read_trace(path)


def test_stage_time_percent_condition_trips_on_relative_growth():
    diff = TraceDiff(stages=[
        TimingDelta(name="detect", a_total=10.0, b_total=13.0,
                    a_count=1, b_count=1, stage=True),
        TimingDelta(name="crawl", a_total=10.0, b_total=11.0,
                    a_count=1, b_count=1, stage=True)])
    hits = diff.violations([parse_fail_on("stage_time>20%")])
    assert len(hits) == 1 and "detect" in hits[0]
    # A tighter threshold catches both stages.
    assert len(diff.violations([parse_fail_on("stage_time>5%")])) == 2
    # Scoped to one stage name.
    assert diff.violations([parse_fail_on("stage_time:crawl>20%")]) == []


def test_counter_glob_condition(traces):
    diff = diff_traces(read_trace(traces["a"]), read_trace(traces["b"]))
    assert diff.violations([parse_fail_on("counter:*!=0")])
    assert diff.violations([parse_fail_on("counter:no.such.name!=0")]) \
        == []


# -- the repro-trace CLI -------------------------------------------------


def test_cli_diff_same_seed_exits_zero(traces, capsys):
    assert trace_main(["diff", traces["a"], traces["a2"],
                       "--fail-on", "counter:*!=0",
                       "--fail-on", "spans!=0",
                       "--fail-on", "stage_time>20%"]) == 0
    assert "identical" in capsys.readouterr().out


def test_cli_diff_different_seed_fails_under_fail_on(traces, capsys):
    assert trace_main(["diff", traces["a"], traces["b"],
                       "--fail-on", "counter:*!=0"]) == 1
    captured = capsys.readouterr()
    assert "FAIL" in captured.err
    assert "counter" in captured.err


def test_cli_diff_without_fail_on_is_report_only(traces, capsys):
    assert trace_main(["diff", traces["a"], traces["b"]]) == 0
    assert "trace diff" in capsys.readouterr().out


def test_cli_diff_json_output(traces, capsys):
    assert trace_main(["diff", traces["a"], traces["b"], "--json",
                       "--fail-on", "counter:*!=0"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["empty"] is False
    assert document["fail_on"] == ["counter:*!=0"]
    assert document["violations"]


def test_cli_diff_bad_fail_on_exits_two(traces, capsys):
    assert trace_main(["diff", traces["a"], traces["b"],
                       "--fail-on", "nonsense"]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_summarize_json(traces, capsys):
    assert trace_main(["summarize", traces["a"], "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["spans"] > 0 and document["open_spans"] == 0
    names = {row["name"] for row in document["span_breakdown"]}
    assert "site" in names
    assert any(c["name"] == "crawl.sites" for c in document["counters"])


def test_cli_summarize_text_still_works(traces, capsys):
    assert trace_main(["summarize", traces["a"]]) == 0
    assert "span breakdown" in capsys.readouterr().out


@pytest.mark.parametrize("content", [
    "",                                       # empty file
    '{"type": "span", "name": "x"',           # truncated JSON
    '{"type": "mystery"}',                    # unknown record type
    '{"no": "meta header"}',                  # valid JSON, not a trace
])
def test_cli_graceful_error_on_bad_trace(tmp_path, capsys, content):
    path = tmp_path / "bad.jsonl"
    path.write_text(content)
    assert trace_main(["summarize", str(path)]) == 2
    captured = capsys.readouterr()
    assert "repro-trace: error:" in captured.err
    assert "Traceback" not in captured.err


def test_cli_graceful_error_on_missing_file(capsys):
    assert trace_main(["diff", "/no/such/a.jsonl",
                       "/no/such/b.jsonl"]) == 2
    assert "repro-trace: error:" in capsys.readouterr().err
