"""Tracking analysis: trackid inference, persistence funnel, cross-device."""


from repro.core import LeakEvent
from repro.tracking import (
    PersistenceAnalyzer,
    TrackIdAnalyzer,
    linkable_receivers,
    match_profiles,
)


def _event(sender="s1.example", receiver="t.example", param="uid",
           token="tok_abcdef123456", stage="signup", channel="uri",
           chain=("sha256",), surface="foo@mydom.com", pii="email"):
    return LeakEvent(sender=sender, receiver=receiver,
                     request_host="x." + receiver, channel=channel,
                     location="query", pii_type=pii, chain=chain,
                     parameter=param, stage=stage,
                     url="https://x.%s/p" % receiver,
                     surface_form=surface, token=token)


# -- trackid inference -------------------------------------------------------

def test_parameter_grouping_across_senders():
    events = [_event(sender="s1.example"), _event(sender="s2.example")]
    params = TrackIdAnalyzer(events).parameters()
    assert len(params) == 1
    assert params[0].parameter == "uid"
    assert params[0].sender_count == 2
    assert params[0].is_cross_site


def test_generic_parameters_excluded():
    events = [_event(param="dl"), _event(param="ev")]
    assert TrackIdAnalyzer(events).parameters() == []


def test_parameterless_events_excluded():
    events = [_event(param=None)]
    assert TrackIdAnalyzer(events).parameters() == []


def test_receivers_with_stable_id():
    events = [
        _event(sender="s1.example", receiver="stable.example"),
        _event(sender="s2.example", receiver="stable.example"),
        _event(sender="s1.example", receiver="once.example"),
    ]
    assert TrackIdAnalyzer(events).receivers_with_stable_id() == \
        ["stable.example"]


def test_varying_parameters_break_stability():
    events = [
        _event(sender="s1.example", param="cd1"),
        _event(sender="s2.example", param="cd2"),
    ]
    assert TrackIdAnalyzer(events).receivers_with_stable_id() == []


# -- persistence funnel -----------------------------------------------------------

def test_cross_site_requires_same_pii_from_two_senders():
    events = [
        _event(sender="s1.example"),
        _event(sender="s2.example"),
    ]
    analyzer = PersistenceAnalyzer(events)
    assert analyzer.cross_site_receivers() == ["t.example"]


def test_cross_site_allows_different_encodings_of_same_pii():
    events = [
        _event(sender="s1.example", chain=("md5",), token="md5tokenXYZ12"),
        _event(sender="s2.example", chain=("sha256",),
               token="sha256tokenXYZ"),
    ]
    assert PersistenceAnalyzer(events).cross_site_receivers() == \
        ["t.example"]


def test_single_sender_receiver_not_cross_site():
    events = [_event(sender="s1.example"), _event(sender="s1.example")]
    assert PersistenceAnalyzer(events).cross_site_receivers() == []


def test_persistent_requires_subpage_observation():
    auth_only = [
        _event(sender="s1.example"), _event(sender="s2.example"),
    ]
    assert PersistenceAnalyzer(auth_only).persistent_receivers() == []
    with_subpage = auth_only + [_event(sender="s1.example",
                                       stage="subpage")]
    assert PersistenceAnalyzer(with_subpage).persistent_receivers() == \
        ["t.example"]


def test_table2_groups_by_method_and_encoding():
    events = [
        _event(sender="s1.example", chain=("sha256",)),
        _event(sender="s2.example", chain=("sha256",)),
        _event(sender="s3.example", chain=("md5",), token="md5tokX123456"),
        _event(sender="s1.example", stage="subpage"),
    ]
    rows = PersistenceAnalyzer(events).table2()
    assert len(rows) == 2
    by_encoding = {row.encoding: row for row in rows}
    assert by_encoding["sha256"].senders == 2
    assert by_encoding["md5"].senders == 1
    assert by_encoding["sha256"].parameters == "uid"


def test_report_bundle():
    events = [
        _event(sender="s1.example"), _event(sender="s2.example"),
        _event(sender="s1.example", stage="subpage"),
    ]
    report = PersistenceAnalyzer(events).report()
    assert report.provider_count == 1
    assert report.cross_site_receivers == ("t.example",)
    assert report.rows


# -- cross-device matching -----------------------------------------------------------

def test_match_profiles_joins_same_token():
    profile_a = [_event(sender="s1.example")]
    profile_b = [_event(sender="s2.example")]
    matches = match_profiles(profile_a, profile_b)
    assert len(matches) == 1
    match = matches[0]
    assert match.receiver == "t.example"
    assert match.senders_a == ("s1.example",)
    assert match.senders_b == ("s2.example",)
    assert match.linked_sites == 2
    assert linkable_receivers(matches) == ["t.example"]


def test_match_profiles_requires_shared_token():
    profile_a = [_event(token="tokenAAAAAAAA")]
    profile_b = [_event(token="tokenBBBBBBBB")]
    assert match_profiles(profile_a, profile_b) == []


def test_match_profiles_sorted_by_linked_sites():
    profile_a = [
        _event(sender="s1.example", receiver="big.example"),
        _event(sender="s2.example", receiver="big.example"),
        _event(sender="s1.example", receiver="small.example"),
    ]
    profile_b = [
        _event(sender="s3.example", receiver="big.example"),
        _event(sender="s1.example", receiver="small.example"),
    ]
    matches = match_profiles(profile_a, profile_b)
    assert matches[0].receiver == "big.example"
    assert matches[0].linked_sites == 3
