"""Deterministic fault injection: plan, server wrapper, flaky resolver."""

import pytest

from repro.dnssim import FlakyResolver
from repro.netsim import Headers, HttpRequest, Url
from repro.netsim.faults import (
    FAULT_DEAD,
    FAULT_DNS,
    FAULT_HTTP_429,
    FAULT_TIMEOUT,
    RETRYABLE_STATUSES,
    TRANSIENT_FAULT_KINDS,
    ConnectionReset,
    ConnectionTimeout,
    FaultPlan,
    NetworkError,
    http_fault_status,
)
from repro.websim import build_default_catalog, Website, wrap_server
from repro.websim.population import Population
from repro.websim.server import WebServer


def _get(url):
    return HttpRequest(method="GET", url=Url.parse(url), headers=Headers())


def _server():
    sites = {"shop.example": Website(domain="shop.example")}
    return WebServer(sites=sites, catalog=build_default_catalog())


# -- FaultPlan ----------------------------------------------------------


def test_same_seed_reproduces_identical_decisions():
    plans = [FaultPlan(seed=3, transient_rate=0.5) for _ in range(2)]
    sequences = []
    for plan in plans:
        decisions = []
        for _ in range(50):
            decisions.append(plan.next_dns_fault("www.shop.example",
                                                 origin="shop.example"))
            decisions.append(plan.next_fault("shop.example"))
        sequences.append(decisions)
    assert sequences[0] == sequences[1]
    assert plans[0].failure_log() == plans[1].failure_log()
    assert any(kind is not None for kind in sequences[0])


def test_different_seeds_differ():
    a = FaultPlan(seed=1, transient_rate=0.5)
    b = FaultPlan(seed=2, transient_rate=0.5)
    seq_a = [a.next_fault("shop.example") for _ in range(50)]
    seq_b = [b.next_fault("shop.example") for _ in range(50)]
    assert seq_a != seq_b


def test_burst_cap_shared_across_dns_and_http_gates():
    # Even at rate ~1 the combined dns+http fault streak per origin never
    # exceeds max_consecutive before the HTTP gate forces a pass-through.
    plan = FaultPlan(seed=0, transient_rate=0.99, dns_rate=0.99,
                     max_consecutive=2)
    streak = 0
    for _ in range(200):
        faults_this_exchange = 0
        if plan.next_dns_fault("www.shop.example",
                               origin="shop.example") is not None:
            faults_this_exchange += 1
            streak += 1
        else:
            http = plan.next_fault("shop.example")
            if http is not None:
                faults_this_exchange += 1
                streak += 1
            else:
                streak = 0
        assert streak <= plan.max_consecutive
    assert plan.fault_counts()


def test_zero_rates_never_fault():
    plan = FaultPlan(seed=5, transient_rate=0.0, dns_rate=0.0)
    for _ in range(100):
        assert plan.next_fault("shop.example") is None
        assert plan.next_dns_fault("www.shop.example",
                                   origin="shop.example") is None
    assert plan.failure_log() == ()


def test_dead_origins_always_fault():
    plan = FaultPlan(seed=0, transient_rate=0.0,
                     dead_origins=["gone.example"])
    assert plan.is_dead("gone.example")
    assert not plan.is_dead("shop.example")
    for _ in range(10):
        assert plan.next_fault("gone.example") == FAULT_DEAD
    assert all(event.kind == FAULT_DEAD for event in plan.failure_log())


def test_dead_rate_draw_is_deterministic():
    plan = FaultPlan(seed=9, dead_rate=0.5)
    verdicts = {name: plan.is_dead(name)
                for name in ("a.example", "b.example", "c.example",
                             "d.example", "e.example", "f.example")}
    again = FaultPlan(seed=9, dead_rate=0.5)
    assert verdicts == {name: again.is_dead(name) for name in verdicts}
    assert set(verdicts.values()) == {True, False}


def test_plan_validates_rates():
    with pytest.raises(ValueError):
        FaultPlan(transient_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(dead_rate=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(max_consecutive=-1)


def test_fault_counts_and_http_status_mapping():
    assert http_fault_status(FAULT_HTTP_429) == 429
    assert http_fault_status(FAULT_TIMEOUT) is None
    assert 429 in RETRYABLE_STATUSES and 503 in RETRYABLE_STATUSES
    plan = FaultPlan(seed=1, transient_rate=0.8)
    for _ in range(100):
        plan.next_fault("shop.example")
    counts = plan.fault_counts()
    assert sum(counts.values()) == len(plan.failure_log())
    assert set(counts) <= set(TRANSIENT_FAULT_KINDS)


# -- FaultyServer -------------------------------------------------------


def test_wrap_server_identity_without_plan():
    server = _server()
    assert wrap_server(server, None) is server


def test_faulty_server_dead_origin_times_out():
    server = wrap_server(_server(), FaultPlan(
        seed=0, transient_rate=0.0, dead_origins=["shop.example"]))
    with pytest.raises(ConnectionTimeout) as excinfo:
        server.handle(_get("https://www.shop.example/"))
    # The client cannot tell dead from slow: it surfaces as a timeout.
    assert excinfo.value.kind == FAULT_TIMEOUT


def test_faulty_server_kinds_surface_correctly():
    # High rate so every planned kind shows up quickly.
    plan = FaultPlan(seed=4, transient_rate=0.9, max_consecutive=1000,
                     slow_seconds=60.0)
    server = wrap_server(_server(), plan)
    statuses, transport_kinds, latencies = set(), set(), []
    for _ in range(300):
        try:
            response = server.handle(_get("https://www.shop.example/"))
        except NetworkError as exc:
            transport_kinds.add(exc.kind)
            continue
        statuses.add(response.status)
        latency = getattr(response, "latency_seconds", None)
        if latency is not None:
            latencies.append(latency)
    assert {429, 500, 503} <= statuses
    assert transport_kinds >= {"timeout", "reset"}
    assert latencies and all(value == 60.0 for value in latencies)


def test_faulty_server_passthrough_reaches_origin():
    server = wrap_server(_server(), FaultPlan(seed=0, transient_rate=0.0))
    response = server.handle(_get("https://www.shop.example/"))
    assert response.status == 200


# -- FlakyResolver ------------------------------------------------------


def test_flaky_resolver_injects_dns_timeouts():
    population = Population(
        sites={"shop.example": Website(domain="shop.example")},
        catalog=build_default_catalog())
    plan = FaultPlan(seed=2, transient_rate=0.0, dns_rate=0.9,
                     max_consecutive=1000)
    resolver = FlakyResolver(population.resolver(), plan)
    raised = 0
    for _ in range(50):
        try:
            assert resolver.exists("www.shop.example") in (True, False)
        except ConnectionTimeout as exc:
            assert exc.kind == FAULT_DNS
            raised += 1
    assert raised > 0
    # Analysis-side lookups are never faulted.
    for _ in range(50):
        resolver.resolve("www.shop.example")
        resolver.cname_chain("www.shop.example")


def test_population_resolver_wraps_only_with_plan():
    population = Population(
        sites={"shop.example": Website(domain="shop.example")},
        catalog=build_default_catalog())
    assert not isinstance(population.resolver(), FlakyResolver)
    assert isinstance(population.resolver(fault_plan=FaultPlan()),
                      FlakyResolver)


def test_network_error_hierarchy():
    assert issubclass(ConnectionTimeout, NetworkError)
    assert issubclass(ConnectionReset, NetworkError)
    error = ConnectionReset("shop.example")
    assert error.kind == "reset"
    assert "shop.example" in str(error)
