"""Folded-stack export: self-time telescoping and the flame CLI.

The core invariant: a span's folded self-time is its duration minus
its children's, so summing every stack under a root reproduces the
root span's duration exactly — which is what reconciles a ``.folded``
file against ``repro-trace summarize --json`` stage times.
"""

import json

import pytest

from repro.core import Study, StudyConfig
from repro.crawler import GeneratedPopulationSpec
from repro.obs import Recorder, read_trace, write_trace
from repro.obs.cli import main as trace_main
from repro.obs.export import summary_dict
from repro.obs.flame import (
    folded_lines,
    folded_stacks,
    self_times,
    slowest_spans,
    stage_totals,
    write_folded,
)
from repro.websim.generator import GeneratorConfig

# -- a hand-built tree with known self-times ------------------------------


def _recorder():
    """study(0..10) > crawl[stage](0..6) > two sites; detect(6..8)."""
    recorder = Recorder()
    recorder.start_span("study", start=0.0)
    recorder.start_span("crawl", start=0.0, kind="stage")
    recorder.start_span("site", start=0.0, domain="a.example")
    recorder.end_span(end=3.0)
    recorder.start_span("site", start=3.0, domain="b.example")
    recorder.end_span(end=5.0)
    recorder.end_span(end=6.0)
    recorder.start_span("detect", start=6.0, kind="stage")
    recorder.end_span(end=8.0)
    recorder.end_span(end=10.0)
    return recorder


def _records(tmp_path, recorder):
    path = str(tmp_path / "trace.jsonl")
    write_trace(recorder, path)
    return read_trace(path)


def test_self_times_subtract_children(tmp_path):
    records = _records(tmp_path, _recorder())
    by_stack = {stack: (self_time, total)
                for stack, self_time, total in self_times(records)}
    assert by_stack["study"] == (2.0, 10.0)
    assert by_stack["study;crawl[kind=stage]"] == (1.0, 6.0)
    assert by_stack["study;crawl[kind=stage];site[domain=a.example]"] \
        == (3.0, 3.0)
    assert by_stack["study;detect[kind=stage]"] == (2.0, 2.0)


def test_folded_lines_are_sorted_and_weighted(tmp_path):
    records = _records(tmp_path, _recorder())
    assert folded_lines(records) == [
        "study 2",
        "study;crawl[kind=stage] 1",
        "study;crawl[kind=stage];site[domain=a.example] 3",
        "study;crawl[kind=stage];site[domain=b.example] 2",
        "study;detect[kind=stage] 2",
    ]


def test_folded_weights_telescope_to_root_duration(tmp_path):
    """One clock domain: folded self-times sum back to the root span."""
    records = _records(tmp_path, _recorder())
    assert sum(folded_stacks(records).values()) == pytest.approx(10.0)


def test_stage_totals_group_span_durations_by_name(tmp_path):
    records = _records(tmp_path, _recorder())
    assert stage_totals(records) == {"study": 10.0, "crawl": 6.0,
                                     "site": 5.0, "detect": 2.0}


def test_scale_multiplies_weights(tmp_path):
    records = _records(tmp_path, _recorder())
    assert stage_totals(records, scale=100.0)["study"] == 1000.0
    assert "study 200" in folded_lines(records, scale=100.0)


def test_zero_self_time_parents_are_dropped_but_leaves_kept(tmp_path):
    recorder = Recorder()
    recorder.start_span("outer", start=0.0)
    recorder.start_span("inner", start=0.0)      # absorbs all the time
    recorder.end_span(end=4.0)
    recorder.end_span(end=4.0)
    recorder.start_span("idle", start=4.0)       # zero-duration leaf
    recorder.end_span(end=4.0)
    stacks = folded_stacks(_records(tmp_path, recorder))
    assert stacks == {"outer;inner": 4.0, "idle": 0.0}


def test_open_spans_are_excluded_but_anchor_children(tmp_path):
    recorder = Recorder()
    recorder.start_span("outer", start=0.0)      # never closed
    recorder.start_span("inner", start=0.0)
    recorder.end_span(end=2.0)
    stacks = folded_stacks(_records(tmp_path, recorder))
    assert stacks == {"outer;inner": 2.0}


def test_identical_sibling_stacks_merge(tmp_path):
    recorder = Recorder()
    recorder.start_span("root", start=0.0)
    for start in (0.0, 1.0, 2.0):
        recorder.start_span("step", start=start)   # same segment 3x
        recorder.end_span(end=start + 1.0)
    recorder.end_span(end=3.0)
    records = _records(tmp_path, recorder)
    assert folded_stacks(records) == {"root;step": 3.0}
    (row,) = slowest_spans(records, top=1)
    assert row == {"path": "root;step", "self": 3.0, "total": 3.0,
                   "count": 3}


def test_slowest_spans_rank_by_self_time_then_path(tmp_path):
    records = _records(tmp_path, _recorder())
    rows = slowest_spans(records, top=3)
    assert [row["path"] for row in rows] == [
        "study;crawl[kind=stage];site[domain=a.example]",
        "study",                                   # self 2: path breaks
        "study;crawl[kind=stage];site[domain=b.example]",  # the 2.0 tie
    ]
    assert [row["self"] for row in rows] == [3.0, 2.0, 2.0]


# -- a real study trace ---------------------------------------------------

_CONFIG = GeneratorConfig(n_sites=8, n_trackers=3, leak_probability=0.6,
                          confirmation_probability=0.4)


@pytest.fixture(scope="module")
def study_trace(tmp_path_factory):
    """A full traced quick study, written as JSONL once per module."""
    spec = GeneratedPopulationSpec(seed=0, config=_CONFIG)
    study = Study(spec.build(), config=StudyConfig().with_observability(),
                  population_spec=spec)
    study.run()
    path = str(tmp_path_factory.mktemp("flame") / "study.jsonl")
    write_trace(study.config.recorder, path)
    return path


def test_real_trace_folds_non_empty(study_trace, tmp_path):
    records = read_trace(study_trace)
    out = str(tmp_path / "study.folded")
    lines = write_folded(records, out)
    assert lines > 0
    content = open(out).read().splitlines()
    assert len(content) == lines
    for line in content:
        stack, _, weight = line.rpartition(" ")
        assert stack and float(weight) >= 0.0


def test_real_trace_stage_totals_reconcile_with_summary(study_trace):
    """Per-stage totals from the folded view match ``summarize --json``
    span_breakdown exactly (the acceptance reconciliation)."""
    records = read_trace(study_trace)
    totals = stage_totals(records)
    summary = {row["name"]: row["total"]
               for row in summary_dict(records, top=100)["span_breakdown"]}
    assert totals and set(totals) == set(summary)
    for name, weight in totals.items():
        assert weight == pytest.approx(summary[name]), name
    # The study's stages are all present under their trace names.
    assert {"study", "crawl", "site"} <= set(totals)


def test_real_trace_self_times_sum_to_folded_weights(study_trace):
    records = read_trace(study_trace)
    total_self = sum(self_time for _, self_time, _ in self_times(records))
    assert total_self == pytest.approx(sum(
        folded_stacks(records).values()))


# -- the CLI --------------------------------------------------------------


def test_cli_flame_writes_the_folded_file(study_trace, tmp_path, capsys):
    out = str(tmp_path / "out.folded")
    assert trace_main(["flame", study_trace, out]) == 0
    stdout = capsys.readouterr().out
    assert "wrote %s" % out in stdout
    assert open(out).read().strip()


def test_cli_flame_empty_trace_exits_one(tmp_path, capsys):
    path = str(tmp_path / "empty.jsonl")
    write_trace(Recorder(), path)       # meta header, no spans
    out = str(tmp_path / "empty.folded")
    assert trace_main(["flame", path, out]) == 1
    assert "no completed spans" in capsys.readouterr().err


def test_cli_flame_unreadable_trace_exits_two(tmp_path, capsys):
    missing = str(tmp_path / "nope.jsonl")
    assert trace_main(["flame", missing, "x.folded"]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_summarize_slowest_table(study_trace, capsys):
    assert trace_main(["summarize", study_trace, "--slowest", "5"]) == 0
    stdout = capsys.readouterr().out
    assert "slowest 5 span paths by self-time:" in stdout
    assert "path" in stdout and "self" in stdout


def test_cli_summarize_slowest_json_parity(study_trace, capsys):
    assert trace_main(["summarize", study_trace, "--json",
                       "--slowest", "4"]) == 0
    document = json.loads(capsys.readouterr().out)
    records = read_trace(study_trace)
    assert document["slowest_spans"] == slowest_spans(records, top=4)
    assert len(document["slowest_spans"]) <= 4
