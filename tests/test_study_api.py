"""The redesigned Study/StudyConfig surface: keyword-only config,
constructor-injected population spec, Study.crawl() dispatch, and the
deprecation shims for the old crawl entry points."""

import pytest

from repro.core import CrawlOutcome, Study, StudyConfig
from repro.crawler import (
    CrawlSession,
    GeneratedPopulationSpec,
    ParallelCrawler,
)
from repro.obs import Recorder
from repro.websim.generator import GeneratorConfig

_CONFIG = GeneratorConfig(n_sites=8, n_trackers=3, leak_probability=0.5,
                          confirmation_probability=0.3)


def _spec(seed=0):
    return GeneratedPopulationSpec(seed=seed, config=_CONFIG)


def _study(workers=1, **config_kwargs):
    spec = _spec()
    config = StudyConfig(workers=workers, num_shards=4, **config_kwargs)
    return Study(spec.build(), config=config, population_spec=spec)


# -- StudyConfig is keyword-only -----------------------------------------


def test_study_config_rejects_positional_arguments():
    with pytest.raises(TypeError):
        StudyConfig(None)


def test_study_config_defaults_and_equality():
    assert StudyConfig() == StudyConfig()
    assert StudyConfig(workers=2) != StudyConfig()
    assert StudyConfig().workers == 1
    assert StudyConfig().recorder is None


def test_study_config_repr_names_every_field():
    text = repr(StudyConfig())
    for name in ("profile", "token_config", "fault_plan", "retry_policy",
                 "workers", "num_shards", "recorder"):
        assert name in text


def test_replace_returns_modified_copy():
    config = StudyConfig(workers=3)
    changed = config.replace(num_shards=6)
    assert changed.workers == 3 and changed.num_shards == 6
    assert config.num_shards is None  # original untouched


def test_replace_rejects_unknown_fields():
    with pytest.raises(TypeError, match="unknown StudyConfig field"):
        StudyConfig().replace(worker=2)


def test_with_observability_attaches_a_recorder():
    config = StudyConfig(workers=2)
    traced = config.with_observability()
    assert isinstance(traced.recorder, Recorder)
    assert traced.workers == 2
    assert config.recorder is None  # copy, not mutation


def test_with_observability_accepts_a_custom_recorder():
    recorder = Recorder()
    assert StudyConfig().with_observability(recorder).recorder is recorder


# -- constructor-injected population spec --------------------------------


def test_population_spec_is_a_constructor_argument():
    spec = _spec()
    study = Study(spec.build(), population_spec=spec)
    assert study.population_spec is spec


def test_population_spec_defaults_to_none():
    assert Study(_spec().build()).population_spec is None


def test_calibrated_passes_the_calibrated_spec_explicitly():
    from repro.crawler import CalibratedPopulationSpec
    study = Study.calibrated()
    assert isinstance(study.population_spec, CalibratedPopulationSpec)
    assert study.spec.population is study.population


# -- Study.crawl() dispatch ----------------------------------------------


def test_crawl_serial_returns_outcome():
    outcome = _study(workers=1).crawl()
    assert isinstance(outcome, CrawlOutcome)
    assert len(outcome.dataset.flows) == _CONFIG.n_sites
    assert outcome.fault_plan is None
    assert outcome.recorder is None


def test_crawl_parallel_matches_the_engine():
    outcome = _study(workers=2).crawl()
    engine_fp = ParallelCrawler(_spec(), workers=2,
                                num_shards=4).crawl().fingerprint()
    assert outcome.dataset.fingerprint() == engine_fp


def test_run_uses_the_same_dispatch():
    serial = _study(workers=1).run()
    parallel = _study(workers=2).run()
    assert serial.dataset.fingerprint() == \
        _study(workers=1).crawl().dataset.fingerprint()
    assert parallel.dataset.fingerprint() == \
        _study(workers=2).crawl().dataset.fingerprint()


def test_crawl_serial_checkpoint_and_resume(tmp_path):
    path = str(tmp_path / "ckpt.pkl")
    baseline = _study().crawl().dataset.fingerprint()

    session = _study().crawler().start()
    session.step()
    session.save(path)
    outcome = _study().crawl(resume=path)
    assert outcome.dataset.fingerprint() == baseline


def test_crawl_rejects_foreign_resume_file(tmp_path):
    from repro.crawler import CheckpointError
    path = tmp_path / "not_a_checkpoint.pkl"
    path.write_bytes(b"junk")
    with pytest.raises((CheckpointError, OSError)):
        _study().crawl(resume=str(path))


# -- deprecated wrappers -------------------------------------------------


def test_start_crawl_is_deprecated_but_works():
    with pytest.warns(DeprecationWarning, match="Study.crawl"):
        session = _study().start_crawl()
    assert isinstance(session, CrawlSession)
    assert not session.done


def test_parallel_crawler_is_deprecated_but_works():
    with pytest.warns(DeprecationWarning, match="Study.crawl"):
        engine = _study(workers=2).parallel_crawler()
    assert isinstance(engine, ParallelCrawler)


def test_crawl_itself_emits_no_deprecation_warning(recwarn):
    import warnings
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        _study().crawl()
