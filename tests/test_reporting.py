"""Table/figure renderers: structure and content of the text output."""

import pytest

from repro.core import LeakAnalysis, LeakEvent
from repro.reporting import (
    render_figure2,
    render_headline,
    render_leak_trace,
    render_receiver_degree_histogram,
    render_table1,
    render_table3,
)


def _event(sender="s1.example", receiver="t.example", **kwargs):
    defaults = dict(request_host="x." + receiver, channel="uri",
                    location="query", pii_type="email", chain=("sha256",),
                    parameter="uid", stage="signup",
                    url="https://x.%s/p?uid=tok" % receiver)
    defaults.update(kwargs)
    return LeakEvent(sender=sender, receiver=receiver, **defaults)


@pytest.fixture(scope="module")
def sample_analysis():
    return LeakAnalysis([
        _event(sender="s1.example"),
        _event(sender="s2.example", chain=()),
        _event(sender="s2.example", receiver="other.example",
               channel="payload", location="body"),
    ])


def test_table1_sections_and_paper_columns(sample_analysis):
    text = render_table1(sample_analysis)
    assert "(a) By method." in text
    assert "(b) By encoding/hashing." in text
    assert "(c) By PII type." in text
    assert "paper (S, R)" in text
    assert "uri" in text and "sha256" in text


def test_table1_without_comparison(sample_analysis):
    text = render_table1(sample_analysis, compare=False)
    assert "paper" not in text


def test_headline_mentions_paper_values(sample_analysis):
    text = render_headline(sample_analysis, total_sites=10,
                           leaking_requests=3)
    assert "paper 130" in text
    assert "leaking requests:        3 (paper 1522)" in text


def test_figure2_bar_chart(sample_analysis):
    text = render_figure2(sample_analysis, top_n=2)
    lines = text.splitlines()
    assert "t.example" in text
    assert any("#" in line for line in lines)
    assert "facebook.com tops the ranking" in text


def test_figure2_empty():
    assert "no receivers" in render_figure2(LeakAnalysis([]))


def test_leak_trace_annotations(sample_analysis):
    text = render_leak_trace(sample_analysis.events, "Demo:", limit=2)
    assert text.startswith("Demo:")
    assert "channel=uri" in text
    assert "... 1 more events" in text


def test_leak_trace_cloaked_note():
    event = _event(cloaked=True)
    text = render_leak_trace([event], "Trace:")
    assert "CNAME cloaking" in text


def test_degree_histogram(sample_analysis):
    text = render_receiver_degree_histogram(sample_analysis)
    assert "1 sender(s)" in text


def test_table3_percentages():
    counts = {"disclose_not_specific": 2, "disclose_specific": 1,
              "no_description": 1, "explicitly_not_shared": 0}
    text = render_table3(counts)
    assert "50.0%" in text
    assert "(paper: 102)" in text
    assert "Total" in text


def test_table2_renderer(events):
    from repro.reporting import render_table2
    from repro.tracking import PersistenceAnalyzer
    report = PersistenceAnalyzer(events).report()
    text = render_table2(report)
    assert "20 providers; paper: 20" in text
    assert "udff[em]" in text
    assert "criteo.com" in text


def test_table4_renderer(crawl, detector):
    from repro.blocklist import BlocklistEvaluator
    from repro.reporting import render_table4
    report = BlocklistEvaluator(detector).evaluate(crawl.log)
    text = render_table4(report)
    assert "-- Senders --" in text and "-- Receivers --" in text
    assert "easyprivacy" in text and "cookie" in text
