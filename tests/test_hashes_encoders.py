"""Reversible encoders: round trips and RFC 4648 vectors."""

import bz2
import gzip

import pytest

from repro.hashes import encoders


def test_base16_rfc4648():
    assert encoders.base16_encode(b"foobar") == b"666F6F626172"


def test_base32_rfc4648():
    assert encoders.base32_encode(b"foobar") == b"MZXW6YTBOI======"


def test_base32hex_rfc4648():
    assert encoders.base32hex_encode(b"foobar") == b"CPNMUOJ1E8======"


def test_base64_rfc4648():
    assert encoders.base64_encode(b"foobar") == b"Zm9vYmFy"


def test_base64url_differs_on_high_bytes():
    data = bytes(range(240, 256)) * 3
    standard = encoders.base64_encode(data)
    urlsafe = encoders.base64url_encode(data)
    assert b"+" in standard or b"/" in standard
    assert b"+" not in urlsafe and b"/" not in urlsafe


@pytest.mark.parametrize("data", [
    b"", b"\x00", b"\x00\x00hello", b"foo@mydom.com", bytes(range(256)),
])
def test_base58_round_trip(data):
    assert encoders.base58_decode(encoders.base58_encode(data)) == data


def test_base58_known_value():
    # "hello world" in Bitcoin base58.
    assert encoders.base58_encode(b"hello world") == b"StV1DL6CwTryKyV"


def test_base58_leading_zeros_become_ones():
    assert encoders.base58_encode(b"\x00\x00a").startswith(b"11")


def test_base58_rejects_invalid_alphabet():
    with pytest.raises(ValueError):
        encoders.base58_decode(b"0OIl")  # excluded characters


def test_rot13_self_inverse():
    data = b"Foo@MyDom.com 123"
    assert encoders.rot13_encode(encoders.rot13_encode(data)) == data


def test_rot13_known():
    assert encoders.rot13_encode(b"uryyb") == b"hello"


def test_gzip_round_trip_and_determinism():
    data = b"foo@mydom.com"
    assert gzip.decompress(encoders.gzip_encode(data)) == data
    # mtime pinned: byte-identical across calls (needed for token matching).
    assert encoders.gzip_encode(data) == encoders.gzip_encode(data)


def test_bzip2_round_trip():
    data = b"persistent tracking identifier"
    assert bz2.decompress(encoders.bzip2_encode(data)) == data


def test_deflate_round_trip():
    data = b"email=foo@mydom.com&name=John"
    assert encoders.deflate_decode(encoders.deflate_encode(data)) == data


def test_deflate_is_raw_stream():
    # No zlib header (0x78) at the front.
    stream = encoders.deflate_encode(b"payload")
    assert stream[:1] != b"\x78"
