"""Property-based tests for transforms and the candidate token set."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import hashes
from repro.core import CandidateTokenSet
from repro.core.persona import DEFAULT_PERSONA

_TRANSFORM_NAMES = st.sampled_from(
    [t.name for t in hashes.all_transforms()])
_VALUES = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789@._-",
    min_size=1, max_size=30)


@given(_TRANSFORM_NAMES, _VALUES)
def test_transforms_deterministic(name, value):
    assert hashes.apply_chain(value, [name]) == \
        hashes.apply_chain(value, [name])


@given(_TRANSFORM_NAMES, _VALUES)
def test_transform_output_is_printable_ascii(name, value):
    output = hashes.apply_chain(value, [name])
    assert all(32 <= ord(char) < 127 for char in output)


@given(st.sampled_from([t.name for t in hashes.all_transforms()
                        if t.kind == hashes.KIND_HASH]), _VALUES, _VALUES)
def test_hash_transforms_injective_in_practice(name, value_a, value_b):
    if value_a != value_b:
        assert hashes.apply_chain(value_a, [name]) != \
            hashes.apply_chain(value_b, [name])


@given(st.lists(st.sampled_from(hashes.OBSERVED_CHAIN_ALPHABET),
                min_size=1, max_size=3))
@settings(max_examples=30, deadline=None)
def test_any_observed_chain_is_detectable(chain):
    """Whatever multi-layer obfuscation a tracker builds from the observed
    alphabet, the default candidate set contains the resulting token."""
    token_set = _default_token_set()
    token = hashes.apply_chain(DEFAULT_PERSONA.email, chain)
    origins = token_set.origins_of(token)
    assert any(tuple(chain) == origin.chain for origin in origins)


@given(st.sampled_from([t.name for t in hashes.all_transforms()]))
@settings(max_examples=40, deadline=None)
def test_any_single_transform_is_detectable(name):
    token_set = _default_token_set()
    token = hashes.apply_chain(DEFAULT_PERSONA.email, [name])
    if len(token) >= token_set.config.min_token_length:
        assert token_set.origins_of(token)


@given(_VALUES)
@settings(max_examples=50, deadline=None)
def test_scan_has_no_false_positives_on_random_text(value):
    token_set = _default_token_set()
    # Random short junk must not be reported unless it genuinely embeds a
    # candidate token.
    matches = token_set.scan(value)
    for match in matches:
        assert match.pattern in value


def test_all_tokens_meet_min_length():
    token_set = _default_token_set()
    assert all(len(token) >= token_set.config.min_token_length
               for token in token_set.tokens())


_CACHE = {}


def _default_token_set():
    if "ts" not in _CACHE:
        _CACHE["ts"] = CandidateTokenSet(DEFAULT_PERSONA)
    return _CACHE["ts"]
