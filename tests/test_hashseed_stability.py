"""PYTHONHASHSEED invariance of the determinism contract.

Builtin ``hash()`` on str/bytes is salted per-process by
``PYTHONHASHSEED``, so any fingerprint, shard layout or ordering built
on it would differ between two interpreter processes.  The audit for
ISSUE 3 found ``crawler.sharding`` and ``CrawlDataset.fingerprint()``
already on ``hashlib`` exclusively (and statan rule DET104 now forbids
regressions); this test is the dynamic half of that guarantee: two
*subprocesses with explicitly different hash seeds* must agree on the
crawl fingerprint and on the shard layout digest.
"""

import os
import subprocess
import sys

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")

#: Crawl a small seeded population and print (layout digest, dataset
#: fingerprint).  Runs in a fresh interpreter so PYTHONHASHSEED applies.
_PROBE = """
from repro.crawler import StudyCrawler
from repro.crawler.sharding import ShardLayout
from repro.websim.generator import GeneratorConfig, generate_population

population = generate_population(
    seed=7, config=GeneratorConfig(n_sites=8, n_trackers=4,
                                   leak_probability=0.6))
layout = ShardLayout.for_domains(population.sites, num_shards=3)
dataset = StudyCrawler(population).crawl()
print(layout.digest())
print(dataset.fingerprint())
"""


def _probe(hash_seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _PROBE], env=env, timeout=300,
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
    layout_digest, fingerprint = result.stdout.split()
    return layout_digest, fingerprint


def test_fingerprint_and_layout_survive_hashseed_change():
    first = _probe(0)
    second = _probe(4242)
    assert first == second


def test_probe_interpreters_really_had_different_hash_salts():
    # Sanity check on the harness itself: with different PYTHONHASHSEED
    # values, builtin hash() of a str *does* differ across the two
    # subprocesses — so the equality above is meaningful.
    script = "print(hash('pii-leakage'))"
    values = set()
    for seed in (0, 4242):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(seed)
        result = subprocess.run([sys.executable, "-c", script], env=env,
                                timeout=60, capture_output=True, text=True)
        assert result.returncode == 0, result.stderr
        values.add(result.stdout.strip())
    assert len(values) == 2
