"""Headers, messages, forms and the capture log."""

import pytest

from repro.netsim import (
    CaptureEntry,
    CaptureLog,
    Headers,
    HttpRequest,
    HttpResponse,
    STAGE_HOMEPAGE,
    STAGE_SIGNUP,
    Url,
    decode_base64_json,
    decode_json,
    decode_multipart,
    decode_urlencoded,
    encode_base64_json,
    encode_json,
    encode_multipart,
    encode_urlencoded,
    flatten_json,
)


# -- Headers ---------------------------------------------------------------

def test_headers_case_insensitive():
    headers = Headers([("Content-Type", "text/html")])
    assert headers.get("content-type") == "text/html"
    assert "CONTENT-TYPE" in headers


def test_headers_repeats_preserved():
    headers = Headers()
    headers.add("Set-Cookie", "a=1")
    headers.add("Set-Cookie", "b=2")
    assert headers.get_all("set-cookie") == ["a=1", "b=2"]
    assert headers.get("Set-Cookie") == "a=1"


def test_headers_set_replaces_all():
    headers = Headers([("X", "1"), ("x", "2")])
    headers.set("X", "3")
    assert headers.get_all("x") == ["3"]


def test_headers_remove_and_len():
    headers = Headers([("A", "1"), ("B", "2")])
    headers.remove("a")
    assert len(headers) == 1
    assert headers.get("A") is None


def test_headers_copy_is_independent():
    original = Headers([("A", "1")])
    clone = original.copy()
    clone.add("B", "2")
    assert len(original) == 1


# -- Messages ----------------------------------------------------------------

def test_request_normalizes_method():
    request = HttpRequest(method="post", url=Url.parse("https://x.com/"))
    assert request.method == "POST"


def test_request_rejects_unknown_resource_type():
    with pytest.raises(ValueError):
        HttpRequest(method="GET", url=Url.parse("https://x.com/"),
                    resource_type="wasm")


def test_request_accessors():
    headers = Headers([("Referer", "https://a.com/"), ("Cookie", "x=1")])
    request = HttpRequest(method="GET", url=Url.parse("https://x.com/"),
                          headers=headers, body=b"k=v")
    assert request.referer == "https://a.com/"
    assert request.cookie_header == "x=1"
    assert request.body_text() == "k=v"


def test_response_redirect_detection():
    response = HttpResponse(status=302,
                            headers=Headers([("Location", "/next")]))
    assert response.is_redirect and response.location == "/next"
    assert not HttpResponse(status=200).is_redirect


# -- Forms ---------------------------------------------------------------------

def test_urlencoded_round_trip():
    fields = [("email", "foo@mydom.com"), ("name", "Alex Romero")]
    assert decode_urlencoded(encode_urlencoded(fields)) == fields


def test_multipart_round_trip():
    fields = [("email", "foo@mydom.com"), ("note", "line1\nline2")]
    body, content_type = encode_multipart(fields)
    assert decode_multipart(body, content_type) == fields


def test_multipart_without_boundary_is_empty():
    assert decode_multipart(b"data", "multipart/form-data") == []


def test_json_round_trip_and_determinism():
    payload = {"b": 1, "a": {"c": [1, 2]}}
    assert decode_json(encode_json(payload)) == payload
    assert encode_json(payload) == encode_json({"a": {"c": [1, 2]}, "b": 1})


def test_decode_json_rejects_non_objects():
    assert decode_json(b"[1,2]") is None
    assert decode_json(b"not json") is None


def test_base64_json_round_trip():
    payload = {"email": "foo@mydom.com"}
    assert decode_base64_json(encode_base64_json(payload)) == payload
    assert decode_base64_json(b"!!!") is None


def test_flatten_json():
    flattened = flatten_json({"user": {"email": "e@x.com",
                                       "tags": ["a", None]}})
    assert ("user.email", "e@x.com") in flattened
    assert ("user.tags[0]", "a") in flattened
    assert ("user.tags[1]", "") in flattened


# -- Capture log ------------------------------------------------------------------

def _entry(site="shop.com", stage=STAGE_HOMEPAGE, blocked=None):
    request = HttpRequest(method="GET",
                          url=Url.parse("https://tracker.net/p"))
    return CaptureEntry(request=request, response=HttpResponse(),
                        site=site, stage=stage,
                        page_url="https://www.shop.com/",
                        blocked_by=blocked)


def test_capture_log_records_and_filters():
    log = CaptureLog()
    log.record(_entry())
    log.record(_entry(stage=STAGE_SIGNUP))
    log.record(_entry(site="other.com"))
    assert len(log) == 3
    assert len(log.by_stage(STAGE_SIGNUP)) == 1
    assert len(log.by_site("shop.com")) == 2


def test_blocked_requests_excluded_by_default():
    log = CaptureLog()
    log.record(_entry())
    log.record(_entry(blocked="shields"))
    assert len(log.requests()) == 1
    assert len(log.requests(include_blocked=True)) == 2


def test_capture_log_extend():
    log_a, log_b = CaptureLog(), CaptureLog()
    log_a.record(_entry())
    log_b.record(_entry())
    log_a.extend(log_b)
    assert len(log_a) == 2
