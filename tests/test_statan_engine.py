"""statan engine: contexts, suppression, baselines, file walking."""

import os
import textwrap

import pytest

from repro.statan import (
    Baseline,
    Finding,
    ModuleContext,
    analyze_paths,
    analyze_source,
    default_rules,
    iter_python_files,
    module_name_for_path,
)
from repro.statan.rules.determinism import WallClockRule


def _ctx(source, module="repro.crawler.fixture"):
    return ModuleContext("fixture.py", textwrap.dedent(source),
                         module=module)


# -- module naming -----------------------------------------------------------

def test_module_name_from_src_layout():
    assert module_name_for_path("src/repro/crawler/runner.py") == \
        "repro.crawler.runner"


def test_module_name_init_maps_to_package():
    assert module_name_for_path("src/repro/statan/__init__.py") == \
        "repro.statan"


def test_module_name_without_src_root():
    assert module_name_for_path("repro/core/tokens.py") == \
        "repro.core.tokens"
    assert module_name_for_path("scratch/tool.py") == "tool"


# -- qualified-name resolution ----------------------------------------------

def test_qualname_resolves_import_aliases():
    ctx = _ctx("""
        import time as clock
        from datetime import datetime as dt
        a = clock.time
        b = dt.now
    """)
    import ast
    assigns = [node for node in ast.walk(ctx.tree)
               if isinstance(node, ast.Assign)]
    assert ctx.qualname(assigns[0].value) == "time.time"
    assert ctx.qualname(assigns[1].value) == "datetime.datetime.now"


def test_module_matches_prefixes():
    ctx = _ctx("x = 1", module="repro.websim.generator")
    assert ctx.module_matches(("repro.websim",))
    assert not ctx.module_matches(("repro.web",))  # prefix, not substring


# -- suppression -------------------------------------------------------------

def test_inline_suppression_specific_rule():
    findings = analyze_source(
        "import time\n"
        "t = time.time()  # statan: ignore[DET101] -- deadline only\n",
        default_rules(), module="repro.crawler.fixture")
    assert findings == []


def test_inline_suppression_bare_ignores_all_but_trips_sta001():
    findings = analyze_source(
        "import time\nt = time.time()  # statan: ignore\n",
        default_rules(), module="repro.crawler.fixture")
    # The DET101 finding is swallowed, but the bare (reason-less)
    # suppression is itself a finding — and STA001 is unsuppressible.
    assert [f.rule for f in findings] == ["STA001"]


def test_justified_bare_suppression_is_clean():
    findings = analyze_source(
        "import time\n"
        "t = time.time()  # statan: ignore -- fixture, all rules\n",
        default_rules(), module="repro.crawler.fixture")
    assert findings == []


def test_suppression_for_other_rule_does_not_apply():
    findings = analyze_source(
        "import time\n"
        "t = time.time()  # statan: ignore[PII201] -- wrong rule\n",
        default_rules(), module="repro.crawler.fixture")
    assert [f.rule for f in findings] == ["DET101"]


def test_suppression_records_reason_and_column():
    ctx = _ctx("import time\n"
               "t = time.time()  # statan: ignore[DET101] -- why not\n")
    entries = ctx.suppressions()
    assert len(entries) == 1
    entry = entries[0]
    assert entry.line == 2 and entry.col > 0
    assert entry.rules == {"DET101"} and entry.reason == "why not"
    assert entry.justified
    assert entry.covers("DET101") and not entry.covers("PII201")


# -- findings ----------------------------------------------------------------

def test_finding_format_and_json_round_trip():
    finding = Finding(rule="DET101", family="determinism", path="a.py",
                      line=3, col=4, message="msg", snippet="t = x")
    assert finding.format() == "a.py:3:4: DET101 msg"
    payload = finding.to_json()
    assert payload["rule"] == "DET101" and payload["line"] == 3


def test_baseline_key_ignores_line_numbers():
    one = Finding(rule="R", family="f", path="a.py", line=3, col=0,
                  message="m", snippet="t = time.time()")
    two = Finding(rule="R", family="f", path="a.py", line=99, col=0,
                  message="m", snippet="t = time.time()")
    assert one.baseline_key == two.baseline_key


# -- baseline machinery ------------------------------------------------------

def _finding(line=1, snippet="t = time.time()", path="a.py"):
    return Finding(rule="DET101", family="determinism", path=path,
                   line=line, col=0, message="m", snippet=snippet)


def test_baseline_round_trip(tmp_path):
    path = str(tmp_path / "base.json")
    baseline = Baseline.from_findings([_finding(), _finding(line=9)])
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == baseline.entries
    assert len(loaded) == 2


def test_baseline_split_counts_as_multiset():
    baseline = Baseline.from_findings([_finding()])
    new, accepted = baseline.split([_finding(line=5), _finding(line=8)])
    assert len(accepted) == 1  # one absorbed by the baselined count
    assert len(new) == 1       # the second identical finding is new


def test_baseline_moved_finding_stays_baselined():
    baseline = Baseline.from_findings([_finding(line=10)])
    new, accepted = baseline.split([_finding(line=200)])
    assert new == [] and len(accepted) == 1


def test_baseline_rejects_wrong_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99, "entries": []}')
    with pytest.raises(ValueError):
        Baseline.load(str(path))


def test_baseline_rejects_malformed_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json")
    with pytest.raises(ValueError):
        Baseline.load(str(path))


# -- analyze_paths -----------------------------------------------------------

def test_iter_python_files_walks_and_sorts(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "note.txt").write_text("not python\n")
    files = iter_python_files([str(tmp_path)])
    names = [os.path.basename(f) for f in files]
    assert names == ["a.py", "b.py"]


def test_iter_python_files_missing_path():
    with pytest.raises(FileNotFoundError):
        iter_python_files(["/no/such/path"])


def test_analyze_paths_reports_syntax_errors_without_raising(tmp_path):
    good = tmp_path / "repro" / "crawler"
    good.mkdir(parents=True)
    (good / "ok.py").write_text("import time\nt = time.time()\n")
    (good / "broken.py").write_text("def f(:\n")
    report = analyze_paths([str(tmp_path)], [WallClockRule()])
    assert report.files_analyzed == 1
    assert len(report.errors) == 1
    assert [f.rule for f in report.findings] == ["DET101"]


def test_report_counts(tmp_path):
    pkg = tmp_path / "repro" / "crawler"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(
        "import time\na = time.time()\nb = time.monotonic()\n")
    report = analyze_paths([str(pkg)], [WallClockRule()])
    assert report.counts_by_rule() == {"DET101": 2}
    assert report.counts_by_family() == {"determinism": 2}
