"""Browser engine: navigation, forms, cookies, protections."""


from repro import hashes
from repro.browser import (
    Browser,
    brave,
    chrome,
    firefox_etp,
    safari,
    vanilla_firefox,
)
from repro.core.leakmodel import CHANNEL_COOKIE, CHANNEL_URI
from repro.core.persona import DEFAULT_PERSONA
from repro.netsim import STAGE_HOMEPAGE, STAGE_SIGNUP
from repro.websim import (
    LeakBehavior,
    SiteAuthConfig,
    TrackerEmbed,
    Website,
    build_default_catalog,
)
from repro.websim.population import Population

EMAIL = DEFAULT_PERSONA.email


def _population(signup_method="POST"):
    catalog = build_default_catalog()
    site = Website(
        domain="shop.example",
        auth=SiteAuthConfig(signup_method=signup_method),
        embeds=[
            TrackerEmbed(catalog.get("facebook.com"),
                         LeakBehavior((CHANNEL_URI,), (("sha256",),))),
            TrackerEmbed(catalog.get("omtrdc.net"),
                         LeakBehavior((CHANNEL_COOKIE,), (("sha256",),))),
        ],
        cname_records={"metrics": "shop.example.sc.omtrdc.net"})
    return Population(sites={"shop.example": site}, catalog=catalog)


def _browser(population, profile=None):
    return Browser(profile=profile or vanilla_firefox(),
                   server=population.build_server(),
                   resolver=population.resolver(),
                   catalog=population.catalog)


def _signup(browser, site):
    page = browser.visit(site, site.page_url("signup"), STAGE_SIGNUP)
    form = page.page.forms[0]
    return browser.submit_form(site, form, DEFAULT_PERSONA.form_fields(),
                               STAGE_SIGNUP)


def test_visit_records_document_and_subresources():
    population = _population()
    site = population.sites["shop.example"]
    browser = _browser(population)
    result = browser.visit(site, site.page_url("home"), STAGE_HOMEPAGE)
    assert result.ok
    hosts = {entry.request.url.host for entry in browser.log}
    assert "www.shop.example" in hosts
    assert "connect.facebook.net" in hosts       # snippet load
    assert "www.facebook.com" in hosts           # baseline pixel
    assert "metrics.shop.example" in hosts       # cloaked beacon


def test_subresources_carry_referer():
    population = _population()
    site = population.sites["shop.example"]
    browser = _browser(population)
    browser.visit(site, site.page_url("home"), STAGE_HOMEPAGE)
    pixel = next(e for e in browser.log
                 if e.request.url.host == "www.facebook.com")
    assert pixel.request.referer == "https://www.shop.example/"


def test_post_form_submit_exfiltrates():
    population = _population()
    site = population.sites["shop.example"]
    browser = _browser(population)
    result = _signup(browser, site)
    assert result.ok
    token = hashes.apply_chain(EMAIL, ["sha256"])
    leaking = [e for e in browser.log
               if e.request.url.query_get("udff[em]") == token]
    assert leaking


def test_get_form_puts_pii_in_document_url_and_referer():
    population = _population(signup_method="GET")
    site = population.sites["shop.example"]
    browser = _browser(population)
    result = _signup(browser, site)
    assert EMAIL in str(result.url).replace("%40", "@")
    pixels = [e for e in browser.log
              if e.request.url.host == "www.facebook.com"
              and e.stage == STAGE_SIGNUP and e.request.referer
              and "email=" in e.request.referer]
    assert pixels


def test_cookie_channel_reaches_cloaked_host():
    population = _population()
    site = population.sites["shop.example"]
    browser = _browser(population)
    _signup(browser, site)
    token = hashes.apply_chain(EMAIL, ["sha256"])
    cloaked = [e for e in browser.log
               if e.request.url.host == "metrics.shop.example"
               and token in (e.request.cookie_header or "")]
    assert cloaked


def test_third_party_cookies_stored_under_vanilla_profile():
    population = _population()
    site = population.sites["shop.example"]
    browser = _browser(population)
    browser.visit(site, site.page_url("home"), STAGE_HOMEPAGE)
    domains = {cookie.domain for cookie in browser.jar.all_cookies()}
    assert "facebook.com" in domains


def test_safari_blocks_third_party_cookie_storage():
    population = _population()
    site = population.sites["shop.example"]
    browser = _browser(population, profile=safari())
    browser.visit(site, site.page_url("home"), STAGE_HOMEPAGE)
    domains = {cookie.domain for cookie in browser.jar.all_cookies()}
    assert "facebook.com" not in domains
    # But the leak requests themselves still leave the browser.
    assert any(e.request.url.host == "www.facebook.com"
               for e in browser.log if not e.was_blocked)


def test_firefox_etp_blocks_tracker_cookies_not_requests():
    population = _population()
    site = population.sites["shop.example"]
    browser = _browser(population,
                       profile=firefox_etp(population.catalog))
    _signup(browser, site)
    domains = {cookie.domain for cookie in browser.jar.all_cookies()}
    assert "facebook.com" not in domains
    token = hashes.apply_chain(EMAIL, ["sha256"])
    assert any(e.request.url.query_get("udff[em]") == token
               for e in browser.log if not e.was_blocked)


def test_brave_blocks_tracker_requests():
    population = _population()
    site = population.sites["shop.example"]
    browser = _browser(population, profile=brave(population.catalog))
    _signup(browser, site)
    blocked_hosts = {e.request.url.host for e in browser.log
                     if e.was_blocked}
    assert "connect.facebook.net" in blocked_hosts
    allowed_fb = [e for e in browser.log
                  if e.request.url.host.endswith("facebook.com")
                  and not e.was_blocked]
    assert allowed_fb == []


def test_brave_uncloaks_cname():
    population = _population()
    site = population.sites["shop.example"]
    browser = _browser(population, profile=brave(population.catalog))
    browser.visit(site, site.page_url("home"), STAGE_HOMEPAGE)
    # The adobe launcher script itself is blocked (assets.adobedtm.com),
    # so no cloaked beacon should appear unblocked either way.
    unblocked_cloaked = [e for e in browser.log
                         if e.request.url.host == "metrics.shop.example"
                         and not e.was_blocked]
    assert unblocked_cloaked == []


def test_nxdomain_recorded_as_blocked():
    population = _population()
    site = population.sites["shop.example"]
    browser = _browser(population)
    result = browser.visit(site, "https://missing.nowhere.example/",
                           STAGE_HOMEPAGE)
    assert not result.ok
    assert any(e.blocked_by == "nxdomain" for e in browser.log)


def test_persistent_id_reemitted_on_subpage():
    population = _population()
    site = population.sites["shop.example"]
    browser = _browser(population)
    _signup(browser, site)
    browser.visit(site, site.page_url("product"), "subpage")
    token = hashes.apply_chain(EMAIL, ["sha256"])
    subpage_hits = [e for e in browser.log if e.stage == "subpage"
                    and e.request.url.query_get("udff[em]") == token]
    assert subpage_hits


def test_clock_monotonic_timestamps():
    population = _population()
    site = population.sites["shop.example"]
    browser = _browser(population, profile=chrome())
    browser.visit(site, site.page_url("home"), STAGE_HOMEPAGE)
    times = [e.request.timestamp for e in browser.log]
    assert times == sorted(times)
    assert len(set(times)) == len(times)


def test_snapshot_cookies():
    population = _population()
    site = population.sites["shop.example"]
    browser = _browser(population)
    browser.visit(site, site.page_url("home"), STAGE_HOMEPAGE)
    browser.snapshot_cookies()
    assert browser.log.stored_cookies
