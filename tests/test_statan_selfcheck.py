"""The gate, aimed at ourselves: src/repro must be clean, and a seeded
violation of each rule family must be caught.

This mirrors the CI ``lint`` job exactly: ``repro-lint src/`` against
the committed ``.repro-lint-baseline.json`` exits 0, and introducing a
violation of any family flips the exit code to 1.
"""

import os
import textwrap

from repro.statan import analyze_paths, default_rules
from repro.statan.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.statan.cli import EXIT_CLEAN, EXIT_FINDINGS, main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
BASELINE = os.path.join(REPO_ROOT, DEFAULT_BASELINE_NAME)

#: One violation per rule family, as it would be typed into a real
#: module in scope.
SEEDED_VIOLATIONS = {
    "determinism": "import time\nT0 = time.time()\n",
    "pii-taint": textwrap.dedent("""
        def debug_dump(persona):
            print(persona.email)
    """),
    "pickle-safety": textwrap.dedent("""
        class Job:
            def __init__(self):
                self.key = lambda item: item
    """),
    "concurrency": textwrap.dedent("""
        import threading

        class Waiter:
            def __init__(self):
                self._cond = threading.Condition()  # statan: ignore[PKL303] -- fixture primitive, parent-side only

            def pause(self):
                with self._cond:
                    self._cond.wait(0.1)
    """),
    "suppression-hygiene":
        "import time\nT0 = time.time()  # statan: ignore[DET101]\n",
}

#: Exactly one violation per CON rule (the lock constructors carry
#: justified PKL303 suppressions so each fixture trips its CON rule
#: and nothing else).
SEEDED_CON_VIOLATIONS = {
    "CON401": textwrap.dedent("""
        import threading

        class SharedState:
            def __init__(self):
                self._lock = threading.Lock()  # statan: ignore[PKL303] -- fixture primitive, parent-side only
                self._value = 0

            def read(self):
                with self._lock:
                    return self._value

            def poke(self):
                self._value = 1
    """),
    "CON402": textwrap.dedent("""
        import threading

        class TwoLocks:
            def __init__(self):
                self._a = threading.Lock()  # statan: ignore[PKL303] -- fixture primitive, parent-side only
                self._b = threading.Lock()  # statan: ignore[PKL303] -- fixture primitive, parent-side only

            def forward(self):
                with self._a:
                    with self._b:
                        pass

            def backward(self):
                with self._b:
                    with self._a:
                        pass
    """),
    "CON403": textwrap.dedent("""
        import subprocess
        import threading

        class Launcher:
            def __init__(self):
                self._lock = threading.Lock()  # statan: ignore[PKL303] -- fixture primitive, parent-side only

            def launch(self):
                with self._lock:
                    return self._spawn()

            def _spawn(self):
                return subprocess.run(["true"])
    """),
    "CON404": SEEDED_VIOLATIONS["concurrency"],
    "CON405": textwrap.dedent("""
        import threading

        def fire_and_forget():
            thread = threading.Thread(target=print)
            thread.start()
    """),
}


def test_committed_baseline_exists():
    assert os.path.exists(BASELINE), \
        "missing %s — run: repro-lint src/ --write-baseline" % BASELINE


def test_src_is_clean_against_committed_baseline(capsys):
    report = analyze_paths([SRC], default_rules())
    assert report.errors == []
    new, _ = Baseline.load(BASELINE).split(report.findings)
    assert new == [], "new findings:\n" + \
        "\n".join(finding.format() for finding in new)


def test_cli_gate_passes_like_ci(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["src"]) == EXIT_CLEAN


def _gate(tmp_path, family, capsys):
    """Exit code of the gate over src/ plus one seeded violation."""
    pkg = tmp_path / "repro" / "crawler"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "seeded_violation.py").write_text(SEEDED_VIOLATIONS[family])
    code = main([SRC, str(tmp_path), "--baseline", BASELINE])
    capsys.readouterr()
    return code


def test_seeded_determinism_violation_fails_gate(tmp_path, capsys):
    assert _gate(tmp_path, "determinism", capsys) == EXIT_FINDINGS


def test_seeded_pii_taint_violation_fails_gate(tmp_path, capsys):
    assert _gate(tmp_path, "pii-taint", capsys) == EXIT_FINDINGS


def test_seeded_pickle_violation_fails_gate(tmp_path, capsys):
    assert _gate(tmp_path, "pickle-safety", capsys) == EXIT_FINDINGS


def test_seeded_concurrency_violation_fails_gate(tmp_path, capsys):
    assert _gate(tmp_path, "concurrency", capsys) == EXIT_FINDINGS


def test_seeded_suppression_hygiene_violation_fails_gate(tmp_path,
                                                         capsys):
    assert _gate(tmp_path, "suppression-hygiene", capsys) == \
        EXIT_FINDINGS


def test_every_family_has_at_least_one_rule_and_fixture():
    families = {rule.family for rule in default_rules()}
    assert families == set(SEEDED_VIOLATIONS)


def test_each_con_seed_trips_exactly_its_rule(tmp_path):
    """Every CON401–CON405 fixture yields exactly one finding, of
    exactly its own rule, under the full default rule set."""
    for rule_id, source in sorted(SEEDED_CON_VIOLATIONS.items()):
        pkg = tmp_path / rule_id / "repro" / "service"
        pkg.mkdir(parents=True)
        (pkg / "seeded_violation.py").write_text(source)
        report = analyze_paths([str(tmp_path / rule_id)],
                               default_rules())
        assert report.errors == []
        assert [finding.rule for finding in report.findings] == \
            [rule_id], ("%s fixture produced: %s" % (
                rule_id,
                [finding.format() for finding in report.findings]))


def test_seeded_con_violations_fail_ci_gate(tmp_path, capsys):
    """The CI-shaped invocation (src + seeds against the committed
    baseline) flips to exit 1 for every CON fixture."""
    for rule_id, source in sorted(SEEDED_CON_VIOLATIONS.items()):
        pkg = tmp_path / rule_id / "repro" / "service"
        pkg.mkdir(parents=True)
        (pkg / "seeded_violation.py").write_text(source)
        code = main([SRC, str(tmp_path / rule_id),
                     "--baseline", BASELINE])
        capsys.readouterr()
        assert code == EXIT_FINDINGS, rule_id


# -- the observability package is inside the gate's scope ----------------


def test_obs_package_is_in_determinism_scope():
    from repro.statan.rules.determinism import DETERMINISM_SCOPE
    assert "repro.obs" in DETERMINISM_SCOPE


def test_obs_package_is_in_pickle_scope():
    from repro.statan.rules.pickle_safety import PICKLE_SCOPE
    assert "repro.obs" in PICKLE_SCOPE


def test_seeded_violation_under_obs_fails_gate(tmp_path, capsys):
    """A wall-clock read planted in repro/obs must trip DET101 — the
    recorder's clocks stay deterministic by rule, not by convention."""
    pkg = tmp_path / "repro" / "obs"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "seeded_violation.py").write_text(
        SEEDED_VIOLATIONS["determinism"])
    code = main([SRC, str(tmp_path), "--baseline", BASELINE])
    capsys.readouterr()
    assert code == EXIT_FINDINGS


# -- the PR-5 observability modules stay inside both scopes ---------------
#
# Scope matching is by dotted prefix, so repro.obs.diff / .regress /
# .progress and repro.crawler.parallel are covered automatically — but
# that coverage is itself a contract worth pinning: heartbeat payloads
# cross the multiprocessing boundary (PKL301–303) and the regression
# gate must never read the host clock (DET1xx).


def test_new_obs_submodules_are_in_both_scopes():
    from repro.statan.engine import ModuleContext
    from repro.statan.rules.determinism import DETERMINISM_SCOPE
    from repro.statan.rules.pickle_safety import PICKLE_SCOPE
    for module in ("repro.obs.diff", "repro.obs.regress",
                   "repro.obs.progress", "repro.crawler.parallel"):
        ctx = ModuleContext(path="test.py", source="", module=module)
        assert ctx.module_matches(DETERMINISM_SCOPE), module
        assert ctx.module_matches(PICKLE_SCOPE), module


def _seed(tmp_path, relpath, source):
    """Plant ``source`` at tmp_path/<relpath> and run the CI gate."""
    target = tmp_path
    for part in relpath.split("/")[:-1]:
        target = target / part
    target.mkdir(parents=True, exist_ok=True)
    (target / relpath.split("/")[-1]).write_text(source)
    return main([SRC, str(tmp_path), "--baseline", BASELINE])


def test_seeded_lambda_in_heartbeat_state_fails_gate(tmp_path, capsys):
    """PKL301 covers heartbeat payloads: a lambda smuggled into an
    event dataclass would die at the worker->parent queue boundary."""
    code = _seed(tmp_path, "repro/obs/progress_seeded.py", textwrap.dedent("""
        class HeartbeatEventSeeded:
            def __init__(self, shard):
                self.shard = shard
                self.render = lambda: "shard %d" % shard
    """))
    capsys.readouterr()
    assert code == EXIT_FINDINGS


def test_seeded_handle_in_heartbeat_state_fails_gate(tmp_path, capsys):
    """PKL303 covers heartbeat payloads: events must carry data, not
    live queues or files (those stay parent-side in the aggregator)."""
    code = _seed(tmp_path, "repro/obs/progress_seeded.py", textwrap.dedent("""
        import multiprocessing

        class HeartbeatEventSeeded:
            def __init__(self):
                self.queue = multiprocessing.Queue()
    """))
    capsys.readouterr()
    assert code == EXIT_FINDINGS


def test_seeded_local_class_in_crawler_fails_gate(tmp_path, capsys):
    """PKL302: shard jobs built from function-local classes cannot be
    re-imported by pickle in the worker process."""
    code = _seed(tmp_path, "repro/crawler/parallel_seeded.py",
                 textwrap.dedent("""
        def make_job():
            class LocalJob:
                pass
            return LocalJob()
    """))
    capsys.readouterr()
    assert code == EXIT_FINDINGS


def test_seeded_clock_read_in_regress_fails_gate(tmp_path, capsys):
    """DET101 covers the regression gate: baselines and history carry
    caller-supplied timestamps, never a clock read of their own."""
    code = _seed(tmp_path, "repro/obs/regress_seeded.py", textwrap.dedent("""
        import time

        def stamp_entry(entry):
            entry["unix_time"] = time.time()
            return entry
    """))
    capsys.readouterr()
    assert code == EXIT_FINDINGS


# -- the supervised executor and chaos harness stay inside both scopes ----
#
# The supervisor deliberately reads the monotonic clock for liveness —
# but only behind explicit ``statan: ignore[DET101]`` markers.  Pinning
# the modules in scope guarantees any *new* clock read (or unpicklable
# state on the worker-crossing types) trips the gate instead of slipping
# in silently.


def test_supervisor_and_chaos_are_in_both_scopes():
    from repro.statan.engine import ModuleContext
    from repro.statan.rules.determinism import DETERMINISM_SCOPE
    from repro.statan.rules.pickle_safety import PICKLE_SCOPE
    for module in ("repro.crawler.supervisor", "repro.crawler.chaos"):
        ctx = ModuleContext(path="test.py", source="", module=module)
        assert ctx.module_matches(DETERMINISM_SCOPE), module
        assert ctx.module_matches(PICKLE_SCOPE), module


def test_seeded_clock_read_in_supervisor_fails_gate(tmp_path, capsys):
    """DET101 covers the supervisor: unmarked wall-clock reads (e.g. in
    a manifest writer — timestamps belong to the caller) trip the gate;
    only the inline-suppressed liveness reads are exempt."""
    code = _seed(tmp_path, "repro/crawler/supervisor_seeded.py",
                 textwrap.dedent("""
        import time

        def stamp_manifest(document):
            document["written_at"] = time.time()
            return document
    """))
    capsys.readouterr()
    assert code == EXIT_FINDINGS


def test_seeded_handle_in_worker_message_fails_gate(tmp_path, capsys):
    """PKL303 covers the supervision channel: worker messages must be
    plain data — a queue handle on a _Beat-like type would die (or
    deadlock) at the process boundary."""
    code = _seed(tmp_path, "repro/crawler/supervisor_seeded.py",
                 textwrap.dedent("""
        import multiprocessing

        class BeatSeeded:
            def __init__(self, shard):
                self.shard = shard
                self.reply_to = multiprocessing.Queue()
    """))
    capsys.readouterr()
    assert code == EXIT_FINDINGS


def test_seeded_lambda_in_chaos_plan_fails_gate(tmp_path, capsys):
    """PKL301 covers chaos plans: they ship to every worker, so a
    callable trigger (instead of plain (shard, site, attempt) data)
    would break the launch pickle."""
    code = _seed(tmp_path, "repro/crawler/chaos_seeded.py",
                 textwrap.dedent("""
        class WorkerFaultSeeded:
            def __init__(self, shard):
                self.trigger = lambda site: site == shard
    """))
    capsys.readouterr()
    assert code == EXIT_FINDINGS


# -- the service layer stays inside both scopes ---------------------------
#
# repro.service is deliberately pinned into DETERMINISM_SCOPE and
# PICKLE_SCOPE: job ids, result documents and replay logs must be
# reproducible, and job specs cross the runner/worker process boundary.
# Its legitimate edges — drain deadlines on the monotonic clock, the
# parent-side SSE condition/locks — carry inline ``statan: ignore``
# markers; anything *new* must trip the gate.


def test_service_package_is_in_both_scopes():
    from repro.statan.engine import ModuleContext
    from repro.statan.rules.determinism import DETERMINISM_SCOPE
    from repro.statan.rules.pickle_safety import PICKLE_SCOPE
    for module in ("repro.service", "repro.service.jobs",
                   "repro.service.server", "repro.service.sse"):
        ctx = ModuleContext(path="test.py", source="", module=module)
        assert ctx.module_matches(DETERMINISM_SCOPE), module
        assert ctx.module_matches(PICKLE_SCOPE), module


def test_seeded_clock_read_in_service_fails_gate(tmp_path, capsys):
    """DET101 covers the service: a wall-clock timestamp stamped into a
    job document would make replayed runs differ — only the inline-
    suppressed drain-deadline reads are exempt."""
    code = _seed(tmp_path, "repro/service/jobs_seeded.py", textwrap.dedent("""
        import time

        def stamp_job(document):
            document["submitted_at"] = time.time()
            return document
    """))
    capsys.readouterr()
    assert code == EXIT_FINDINGS


def test_seeded_uuid_job_id_in_service_fails_gate(tmp_path, capsys):
    """DET103 covers job ids: they are sequential on purpose — an
    os-entropy id would be unreproducible across reruns."""
    code = _seed(tmp_path, "repro/service/store_seeded.py",
                 textwrap.dedent("""
        import uuid

        def mint_job_id():
            return "job-%s" % uuid.uuid4()
    """))
    capsys.readouterr()
    assert code == EXIT_FINDINGS


def test_seeded_handle_in_service_spec_fails_gate(tmp_path, capsys):
    """PKL303 covers job specs: a live handle on a spec-like object
    would die at the runner->worker pickle boundary."""
    code = _seed(tmp_path, "repro/service/jobs_seeded.py", textwrap.dedent("""
        import threading

        class JobSpecSeeded:
            def __init__(self):
                self.guard = threading.Lock()
    """))
    capsys.readouterr()
    assert code == EXIT_FINDINGS


# -- the compiled hot path stays inside the gate's scopes ------------------
#
# The compile-once layers added for the hot path — the PSL's caches, the
# Aho-compiled blocklist matcher, and repro.core.assets — sit directly
# under the fingerprint-invariance contract, and StudyAssetsSpec rides
# shard-job pickles.  Pin them in scope so any nondeterminism (or
# unpicklable state on the spec) trips the gate.


def test_hot_path_modules_are_in_scope():
    from repro.statan.engine import ModuleContext
    from repro.statan.rules.determinism import DETERMINISM_SCOPE
    from repro.statan.rules.pickle_safety import PICKLE_SCOPE
    for module in ("repro.psl.rules", "repro.blocklist.matcher",
                   "repro.core.assets"):
        ctx = ModuleContext(path="test.py", source="", module=module)
        assert ctx.module_matches(DETERMINISM_SCOPE), module
    ctx = ModuleContext(path="test.py", source="",
                        module="repro.core.assets")
    assert ctx.module_matches(PICKLE_SCOPE)


def test_seeded_clock_read_in_psl_fails_gate(tmp_path, capsys):
    """DET101 covers the PSL cache layer: a TTL-style clock read in a
    lookup cache would make suffix answers time-dependent."""
    code = _seed(tmp_path, "repro/psl/rules_seeded.py", textwrap.dedent("""
        import time

        def cache_entry(suffix):
            return (suffix, time.time())
    """))
    capsys.readouterr()
    assert code == EXIT_FINDINGS


def test_seeded_builtin_hash_in_matcher_fails_gate(tmp_path, capsys):
    """DET104 covers the compiled matcher: keying the token index on
    builtin hash() would reorder candidates across processes."""
    code = _seed(tmp_path, "repro/blocklist/matcher_seeded.py",
                 textwrap.dedent("""
        def bucket_for(token, n_buckets):
            return hash(token) % n_buckets
    """))
    capsys.readouterr()
    assert code == EXIT_FINDINGS


def test_seeded_handle_on_assets_spec_fails_gate(tmp_path, capsys):
    """PKL303 covers StudyAssetsSpec: the recipe crosses the shard-job
    pickle boundary, so live handles on spec-like state must trip."""
    code = _seed(tmp_path, "repro/core/assets/seeded.py", textwrap.dedent("""
        import threading

        class AssetsSpecSeeded:
            def __init__(self):
                self.build_lock = threading.Lock()
    """))
    capsys.readouterr()
    assert code == EXIT_FINDINGS
