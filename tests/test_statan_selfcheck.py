"""The gate, aimed at ourselves: src/repro must be clean, and a seeded
violation of each rule family must be caught.

This mirrors the CI ``lint`` job exactly: ``repro-lint src/`` against
the committed ``.repro-lint-baseline.json`` exits 0, and introducing a
violation of any family flips the exit code to 1.
"""

import os
import textwrap

from repro.statan import analyze_paths, default_rules
from repro.statan.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.statan.cli import EXIT_CLEAN, EXIT_FINDINGS, main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
BASELINE = os.path.join(REPO_ROOT, DEFAULT_BASELINE_NAME)

#: One violation per rule family, as it would be typed into a real
#: module in scope.
SEEDED_VIOLATIONS = {
    "determinism": "import time\nT0 = time.time()\n",
    "pii-taint": textwrap.dedent("""
        def debug_dump(persona):
            print(persona.email)
    """),
    "pickle-safety": textwrap.dedent("""
        class Job:
            def __init__(self):
                self.key = lambda item: item
    """),
}


def test_committed_baseline_exists():
    assert os.path.exists(BASELINE), \
        "missing %s — run: repro-lint src/ --write-baseline" % BASELINE


def test_src_is_clean_against_committed_baseline(capsys):
    report = analyze_paths([SRC], default_rules())
    assert report.errors == []
    new, _ = Baseline.load(BASELINE).split(report.findings)
    assert new == [], "new findings:\n" + \
        "\n".join(finding.format() for finding in new)


def test_cli_gate_passes_like_ci(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["src"]) == EXIT_CLEAN


def _gate(tmp_path, family, capsys):
    """Exit code of the gate over src/ plus one seeded violation."""
    pkg = tmp_path / "repro" / "crawler"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "seeded_violation.py").write_text(SEEDED_VIOLATIONS[family])
    code = main([SRC, str(tmp_path), "--baseline", BASELINE])
    capsys.readouterr()
    return code


def test_seeded_determinism_violation_fails_gate(tmp_path, capsys):
    assert _gate(tmp_path, "determinism", capsys) == EXIT_FINDINGS


def test_seeded_pii_taint_violation_fails_gate(tmp_path, capsys):
    assert _gate(tmp_path, "pii-taint", capsys) == EXIT_FINDINGS


def test_seeded_pickle_violation_fails_gate(tmp_path, capsys):
    assert _gate(tmp_path, "pickle-safety", capsys) == EXIT_FINDINGS


def test_every_family_has_at_least_one_rule_and_fixture():
    families = {rule.family for rule in default_rules()}
    assert families == set(SEEDED_VIOLATIONS)


# -- the observability package is inside the gate's scope ----------------


def test_obs_package_is_in_determinism_scope():
    from repro.statan.rules.determinism import DETERMINISM_SCOPE
    assert "repro.obs" in DETERMINISM_SCOPE


def test_obs_package_is_in_pickle_scope():
    from repro.statan.rules.pickle_safety import PICKLE_SCOPE
    assert "repro.obs" in PICKLE_SCOPE


def test_seeded_violation_under_obs_fails_gate(tmp_path, capsys):
    """A wall-clock read planted in repro/obs must trip DET101 — the
    recorder's clocks stay deterministic by rule, not by convention."""
    pkg = tmp_path / "repro" / "obs"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "seeded_violation.py").write_text(
        SEEDED_VIOLATIONS["determinism"])
    code = main([SRC, str(tmp_path), "--baseline", BASELINE])
    capsys.readouterr()
    assert code == EXIT_FINDINGS
