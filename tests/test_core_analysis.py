"""Leak aggregation: relationships, Table 1 semantics, Figure 2."""


from repro.core import LeakAnalysis, LeakEvent, encoding_label


def _event(sender="s1.example", receiver="t1.example", channel="uri",
           chain=("sha256",), pii="email", param="uid", stage="signup"):
    return LeakEvent(sender=sender, receiver=receiver,
                     request_host="x." + receiver, channel=channel,
                     location="query", pii_type=pii, chain=chain,
                     parameter=param, stage=stage,
                     url="https://x.%s/p" % receiver)


def test_encoding_label_vocabulary():
    assert encoding_label(()) == "plaintext"
    assert encoding_label(("sha256",)) == "sha256"
    assert encoding_label(("md5", "sha256")) == "sha256 of md5"
    assert encoding_label(("base64url",)) == "base64"


def test_relationship_merging():
    analysis = LeakAnalysis([
        _event(channel="uri"),
        _event(channel="payload"),
        _event(chain=()),
    ])
    relationships = analysis.relationships()
    assert len(relationships) == 1
    rel = relationships[0]
    assert rel.channels == {"uri", "payload"}
    assert rel.encodings == {"sha256", "plaintext"}
    assert rel.uses_combined_channels
    assert rel.uses_combined_encodings


def test_senders_receivers_sorted_distinct():
    analysis = LeakAnalysis([
        _event(sender="b.example"), _event(sender="a.example"),
        _event(sender="a.example", receiver="t2.example"),
    ])
    assert analysis.senders() == ["a.example", "b.example"]
    assert analysis.receivers() == ["t1.example", "t2.example"]


def test_headline_statistics():
    events = [
        _event(sender="s1.example", receiver="t1.example"),
        _event(sender="s1.example", receiver="t2.example"),
        _event(sender="s1.example", receiver="t3.example"),
        _event(sender="s2.example", receiver="t1.example"),
    ]
    stats = LeakAnalysis(events).headline(total_sites=4)
    assert stats["senders"] == 2
    assert stats["receivers"] == 3
    assert stats["mean_receivers_per_sender"] == 2.0
    assert stats["max_receivers_per_sender"] == 3
    assert stats["pct_senders_with_3plus"] == 50.0
    assert stats["pct_sites_leaking"] == 50.0


def test_max_receiver_sender():
    events = [_event(sender="big.example", receiver="t%d.example" % i)
              for i in range(5)]
    events.append(_event(sender="small.example"))
    assert LeakAnalysis(events).max_receiver_sender() == ("big.example", 5)


def test_table1a_combined_requires_multichannel_relationship():
    events = [
        # One sender uses uri to A and payload to B: NOT combined.
        _event(sender="s1.example", receiver="a.example", channel="uri"),
        _event(sender="s1.example", receiver="b.example",
               channel="payload"),
        # Another sender uses uri+payload to the same receiver: combined.
        _event(sender="s2.example", receiver="c.example", channel="uri"),
        _event(sender="s2.example", receiver="c.example",
               channel="payload"),
    ]
    rows = {row.label: row for row in LeakAnalysis(events).table1a()}
    assert rows["uri"].senders == 2
    assert rows["payload"].senders == 2
    assert rows["combined"].senders == 1
    assert rows["combined"].receivers == 1


def test_table1b_combined_within_relationship_only():
    events = [
        _event(sender="s1.example", receiver="a.example", chain=()),
        _event(sender="s1.example", receiver="b.example",
               chain=("sha256",)),
        _event(sender="s2.example", receiver="c.example", chain=()),
        _event(sender="s2.example", receiver="c.example",
               chain=("sha256",)),
    ]
    rows = {row.label: row for row in LeakAnalysis(events).table1b()}
    assert rows["plaintext"].senders == 2
    assert rows["sha256"].senders == 2
    assert rows["combined"].senders == 1


def test_table1c_pii_combinations():
    events = [
        _event(sender="s1.example", receiver="a.example", pii="email"),
        _event(sender="s2.example", receiver="b.example", pii="email"),
        _event(sender="s2.example", receiver="b.example", pii="name"),
        _event(sender="s3.example", receiver="c.example", pii="username"),
    ]
    rows = {row.label: row for row in LeakAnalysis(events).table1c()}
    # s2 leaks email AND name to the same receiver: that relationship is
    # an "email,name" combination, not an "email" one.
    assert rows["email"].senders == 1
    assert rows["email,name"].senders == 1
    assert rows["username"].senders == 1


def test_figure2_ranking_and_percentages():
    events = [
        _event(sender="s1.example", receiver="big.example"),
        _event(sender="s2.example", receiver="big.example"),
        _event(sender="s1.example", receiver="small.example"),
    ]
    ranking = LeakAnalysis(events).figure2(top_n=2)
    assert ranking[0] == ("big.example", 2, 100.0)
    assert ranking[1] == ("small.example", 1, 50.0)


def test_receiver_degree_and_single_sender_receivers():
    events = [
        _event(sender="s1.example", receiver="multi.example"),
        _event(sender="s2.example", receiver="multi.example"),
        _event(sender="s1.example", receiver="single.example"),
    ]
    analysis = LeakAnalysis(events)
    assert analysis.receiver_degree() == {"multi.example": 2,
                                          "single.example": 1}
    assert analysis.single_sender_receivers() == ["single.example"]


def test_empty_analysis():
    analysis = LeakAnalysis([])
    assert analysis.senders() == []
    assert analysis.headline()["senders"] == 0
    assert analysis.max_receiver_sender() is None
    assert analysis.figure2() == []
