"""Tracker-side timeline reconstruction."""


from repro.core import LeakEvent
from repro.tracking import (
    reconstruct_timelines,
    render_timeline,
)


def _event(sender, timestamp, receiver="t.example", token="tok123456789",
           param="uid", stage="signup"):
    return LeakEvent(sender=sender, receiver=receiver,
                     request_host="x." + receiver, channel="uri",
                     location="query", pii_type="email",
                     chain=("sha256",), parameter=param, stage=stage,
                     url="https://x.%s/p" % receiver, token=token,
                     timestamp=timestamp)


def test_timeline_ordered_by_time():
    events = [_event("b.example", 20.0), _event("a.example", 10.0),
              _event("c.example", 30.0, stage="subpage")]
    timelines = reconstruct_timelines(events)
    assert len(timelines) == 1
    timeline = timelines[0]
    assert [e.sender for e in timeline.entries] == \
        ["a.example", "b.example", "c.example"]
    assert timeline.sites == ["a.example", "b.example", "c.example"]
    assert timeline.span == 20.0


def test_timelines_keyed_by_identifier():
    events = [_event("a.example", 1.0, token="user1tok00000"),
              _event("b.example", 2.0, token="user2tok00000")]
    timelines = reconstruct_timelines(events)
    assert len(timelines) == 2
    identifiers = {t.identifier for t in timelines}
    assert identifiers == {"user1tok00000", "user2tok00000"}


def test_parameterless_events_excluded():
    events = [_event("a.example", 1.0, param=None)]
    assert reconstruct_timelines(events) == []


def test_receiver_filter_and_min_entries():
    events = [_event("a.example", 1.0),
              _event("b.example", 2.0),
              _event("c.example", 3.0, receiver="other.example")]
    timelines = reconstruct_timelines(events, receiver="t.example",
                                      min_entries=2)
    assert len(timelines) == 1
    assert timelines[0].receiver == "t.example"
    assert reconstruct_timelines(events, receiver="other.example",
                                 min_entries=2) == []


def test_visits_between():
    events = [_event("a.example", 1.0), _event("b.example", 5.0),
              _event("c.example", 9.0)]
    timeline = reconstruct_timelines(events)[0]
    window = timeline.visits_between(2.0, 8.0)
    assert [e.sender for e in window] == ["b.example"]


def test_render_timeline():
    events = [_event("a.example", 1.0), _event("b.example", 2.0)]
    text = render_timeline(reconstruct_timelines(events)[0], limit=1)
    assert "2 observations over 2 sites" in text
    assert "... 1 more observations" in text


def test_calibrated_timelines(events):
    """On the calibrated crawl, criteo's log spans many sites per id."""
    timelines = reconstruct_timelines(events, receiver="criteo.com")
    assert timelines
    best = timelines[0]
    assert len(best.sites) >= 2
    # Observations are time-ordered (monotone timestamps).
    stamps = [entry.timestamp for entry in best.entries]
    assert stamps == sorted(stamps)
    # Subpage visits are part of the log (persistence).
    assert any(entry.stage == "subpage" for entry in best.entries)
