"""RFC 6265 cookie jar semantics."""


from repro.netsim import CookieJar, Url, parse_set_cookie


def _url(text="https://www.shop.com/account"):
    return Url.parse(text)


def test_parse_basic_set_cookie():
    cookie = parse_set_cookie("sid=abc123; Path=/; Max-Age=3600", _url(),
                              now=100.0)
    assert cookie.name == "sid"
    assert cookie.value == "abc123"
    assert cookie.domain == "www.shop.com"
    assert cookie.host_only
    assert cookie.expires == 3700.0


def test_domain_attribute_makes_domain_cookie():
    cookie = parse_set_cookie("id=1; Domain=shop.com", _url())
    assert cookie.domain == "shop.com"
    assert not cookie.host_only
    assert cookie.domain_matches("metrics.shop.com")
    assert cookie.domain_matches("shop.com")
    assert not cookie.domain_matches("evilshop.com")


def test_foreign_domain_attribute_rejected():
    assert parse_set_cookie("id=1; Domain=tracker.net", _url()) is None


def test_host_only_does_not_match_subdomains():
    cookie = parse_set_cookie("id=1", _url())
    assert cookie.domain_matches("www.shop.com")
    assert not cookie.domain_matches("cdn.www.shop.com")
    assert not cookie.domain_matches("shop.com")


def test_path_matching():
    cookie = parse_set_cookie("id=1; Path=/account", _url())
    assert cookie.path_matches("/account")
    assert cookie.path_matches("/account/login")
    assert not cookie.path_matches("/accounts")
    assert not cookie.path_matches("/")


def test_secure_cookie_not_sent_over_http():
    jar = CookieJar()
    jar.set_from_header("id=1; Secure", _url("https://shop.com/"))
    assert jar.cookie_header(Url.parse("https://shop.com/")) == "id=1"
    assert jar.cookie_header(Url.parse("http://shop.com/")) == ""


def test_expiry_against_simulated_clock():
    jar = CookieJar()
    jar.set_from_header("id=1; Max-Age=10", _url(), now=0.0)
    assert jar.cookie_header(_url(), now=5.0) == "id=1"
    assert jar.cookie_header(_url(), now=11.0) == ""


def test_clear_expired():
    jar = CookieJar()
    jar.set_from_header("a=1; Max-Age=10", _url(), now=0.0)
    jar.set_from_header("b=2; Max-Age=1000", _url(), now=0.0)
    assert jar.clear_expired(now=100.0) == 1
    assert len(jar) == 1


def test_overwrite_keeps_creation_time():
    jar = CookieJar()
    jar.set_from_header("id=old", _url(), now=1.0)
    jar.set_from_header("id=new", _url(), now=50.0)
    cookies = jar.all_cookies()
    assert len(cookies) == 1
    assert cookies[0].value == "new"
    assert cookies[0].creation_time == 1.0


def test_cookie_header_sort_order():
    # Longer paths first; earlier creation first among equals.
    jar = CookieJar()
    jar.set_from_header("b=2; Path=/account", _url(), now=2.0)
    jar.set_from_header("a=1; Path=/", _url(), now=1.0)
    header = jar.cookie_header(_url("https://www.shop.com/account/x"))
    assert header == "b=2; a=1"


def test_partitioned_storage_isolated():
    jar = CookieJar()
    tracker_url = Url.parse("https://tracker.net/pixel")
    jar.set_from_header("tuid=A; Domain=tracker.net", tracker_url,
                        partition="shop-a.com")
    assert jar.cookie_header(tracker_url, partition="shop-a.com") == "tuid=A"
    assert jar.cookie_header(tracker_url, partition="shop-b.com") == ""
    assert jar.cookie_header(tracker_url) == ""


def test_unparseable_header_returns_none():
    assert parse_set_cookie("no-equals-sign", _url()) is None
    assert parse_set_cookie("=value-only", _url()) is None


def test_expires_attribute_treated_as_persistent():
    cookie = parse_set_cookie(
        "id=1; Expires=Wed, 21 Oct 2026 07:28:00 GMT", _url(), now=0.0)
    assert cookie.expires is not None and cookie.expires > 0


def test_clear():
    jar = CookieJar()
    jar.set_from_header("a=1", _url())
    jar.clear()
    assert len(jar) == 0
