"""RuntimeMetrics registry + resource sampling: the ops telemetry core.

These are the wall-clock-side primitives (see ``repro.obs.runtime``'s
module docstring for the domain contract); the determinism-side
invariance proof lives in ``tests/test_obs_resources.py``.
"""

import threading

import pytest

from repro.obs.runtime import (
    LATENCY_BUCKETS,
    ResourceSampler,
    RuntimeMetrics,
    aggregate_resources,
    render_ticker,
    sample_resources,
    wall_now,
)

# -- counters / gauges ----------------------------------------------------


def test_counter_accumulates_per_label_set():
    metrics = RuntimeMetrics()
    metrics.inc("requests", labels={"method": "GET"})
    metrics.inc("requests", labels={"method": "GET"})
    metrics.inc("requests", 3, labels={"method": "POST"})
    metrics.inc("requests")
    assert metrics.value("requests", labels={"method": "GET"}) == 2
    assert metrics.value("requests", labels={"method": "POST"}) == 3
    assert metrics.value("requests") == 1


def test_label_order_does_not_split_series():
    metrics = RuntimeMetrics()
    metrics.inc("hits", labels={"a": "1", "b": "2"})
    metrics.inc("hits", labels={"b": "2", "a": "1"})
    assert metrics.value("hits", labels={"b": "2", "a": "1"}) == 2
    (family,) = metrics.families()
    assert len(family["series"]) == 1


def test_gauge_set_and_add():
    metrics = RuntimeMetrics()
    metrics.set_gauge("depth", 4)
    metrics.set_gauge("depth", 2)
    assert metrics.value("depth") == 2
    metrics.add_gauge("subscribers", 1)
    metrics.add_gauge("subscribers", 1)
    metrics.add_gauge("subscribers", -1)
    assert metrics.value("subscribers") == 1


def test_missing_series_reads_as_zero():
    metrics = RuntimeMetrics()
    assert metrics.value("never_touched") == 0.0
    assert metrics.value("never_touched", labels={"x": "y"}) == 0.0


# -- histograms -----------------------------------------------------------


def test_histogram_observe_and_snapshot():
    metrics = RuntimeMetrics()
    metrics.observe("latency", 0.003, bounds=(0.01, 1.0))
    metrics.observe("latency", 0.5, bounds=(0.01, 1.0))
    metrics.observe("latency", 30.0)     # bounds fixed on first touch
    (family,) = metrics.families()
    assert family["kind"] == "histogram"
    assert family["bounds"] == [0.01, 1.0]
    (entry,) = family["series"]
    histogram = entry["histogram"]
    assert histogram["count"] == 3
    assert histogram["bucket_counts"] == [1, 1, 1]
    assert histogram["total"] == pytest.approx(30.503)


def test_histogram_default_bounds_are_latency_buckets():
    metrics = RuntimeMetrics()
    metrics.observe("latency", 0.1)
    (family,) = metrics.families()
    assert tuple(family["bounds"]) == LATENCY_BUCKETS


def test_kind_conflict_raises():
    metrics = RuntimeMetrics()
    metrics.inc("thing")
    with pytest.raises(ValueError, match="is a counter"):
        metrics.set_gauge("thing", 1)
    with pytest.raises(ValueError, match="cannot use it as a histogram"):
        metrics.observe("thing", 1.0)


def test_histogram_families_report_zero_via_value():
    """value() is the scalar read path; histograms read as 0 there."""
    metrics = RuntimeMetrics()
    metrics.observe("latency", 1.0)
    assert metrics.value("latency") == 0.0


# -- snapshot semantics ---------------------------------------------------


def test_families_snapshot_is_sorted_and_detached():
    metrics = RuntimeMetrics()
    metrics.inc("zeta")
    metrics.set_gauge("alpha", 1)
    snapshot = metrics.families()
    assert [family["name"] for family in snapshot] == ["alpha", "zeta"]
    # Mutating the registry does not reach into an earlier snapshot.
    metrics.inc("zeta", 10)
    assert snapshot[1]["series"][0]["value"] == 1


def test_help_sticks_from_first_non_empty():
    metrics = RuntimeMetrics()
    metrics.inc("requests")
    metrics.inc("requests", help="Requests served.")
    metrics.inc("requests", help="A different string, ignored.")
    (family,) = metrics.families()
    assert family["help"] == "Requests served."


def test_concurrent_increments_do_not_lose_updates():
    metrics = RuntimeMetrics()

    def spin():
        for _ in range(500):
            metrics.inc("hits")
            metrics.observe("lat", 0.001)

    threads = [threading.Thread(target=spin) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert metrics.value("hits") == 2000
    (family,) = [f for f in metrics.families() if f["name"] == "lat"]
    assert family["series"][0]["histogram"]["count"] == 2000


# -- the ops clock --------------------------------------------------------


def test_wall_now_is_monotonic_nondecreasing():
    first = wall_now()
    second = wall_now()
    assert second >= first


# -- resource sampling ----------------------------------------------------


def test_sample_resources_has_the_documented_keys():
    sample = sample_resources()
    assert sample["gc_collections"] >= 0
    assert sample["gc_collected"] >= 0
    # Linux CI always has the resource module.
    assert sample["cpu_user_seconds"] >= 0
    assert sample["max_rss_kb"] > 0


def test_sampler_reports_deltas_not_cumulative_counters():
    sampler = ResourceSampler()
    # Burn a little CPU so the delta is visibly small but non-negative.
    sum(index * index for index in range(20000))
    sample = sampler.sample()
    cumulative = sample_resources()
    assert 0 <= sample["cpu_user_seconds"] <= cumulative["cpu_user_seconds"]
    assert sample["gc_collections"] <= cumulative["gc_collections"]
    # Peak keys stay absolute: a high-water mark has no delta.
    assert sample["max_rss_kb"] == pytest.approx(cumulative["max_rss_kb"],
                                                 rel=0.5)
    assert sample["max_rss_kb"] > 0


def test_aggregate_sums_deltas_and_maxes_peaks():
    merged = aggregate_resources([
        {"cpu_user_seconds": 1.5, "max_rss_kb": 100.0, "gc_collections": 2},
        {"cpu_user_seconds": 0.5, "max_rss_kb": 300.0, "gc_collections": 1},
    ])
    assert merged == {"cpu_user_seconds": 2.0, "gc_collections": 3.0,
                      "max_rss_kb": 300.0}
    assert list(merged) == sorted(merged)


def test_aggregate_of_nothing_is_empty():
    assert aggregate_resources([]) == {}


# -- the ticker -----------------------------------------------------------


def test_render_ticker_reads_scraped_series():
    line = render_ticker({
        'repro_service_jobs{state="queued"}': 2.0,
        'repro_service_jobs{state="running"}': 1.0,
        "repro_service_queue_depth": 2.0,
        "repro_service_queue_capacity": 16.0,
        "repro_service_sse_subscribers": 3.0,
        "repro_http_bytes_sent_total": 2048.0,
        "repro_service_uptime_seconds": 12.7,
    })
    assert "jobs queued 2 running 1" in line
    assert "queue 2/16" in line
    assert "sse 3" in line
    assert "2.0 KB sent" in line
    assert "up 12s" in line


def test_render_ticker_tolerates_an_empty_scrape():
    line = render_ticker({})
    assert "jobs none" in line and "queue 0/0" in line
