"""Resilient crawl: convergence, determinism, quarantine, checkpoint/resume."""

import os

import pytest

from repro.core import Study, StudyConfig
from repro.crawler import (
    CheckpointError,
    CrawlSession,
    FAILURE_PERMANENT,
    FAILURE_TRANSIENT,
    RetryPolicy,
    STATUS_QUARANTINED,
    STATUS_SUCCESS,
    STATUS_TAXONOMY,
    StudyCrawler,
)
from repro.netsim.faults import FaultPlan
from repro.reporting import render_crawl_health
from repro.websim.generator import GeneratorConfig, generate_population

_CONFIG = dict(n_sites=8, n_trackers=4, leak_probability=0.6,
               confirmation_probability=0.4)


def _population():
    return generate_population(seed=5, config=GeneratorConfig(**_CONFIG))


def _leak_signature(events):
    """Leak identity without timestamps (retries shift the clock)."""
    return sorted(set((event.sender, event.receiver, event.channel,
                       event.location, event.pii_type, event.chain,
                       event.parameter, event.stage)
                      for event in events))


def test_faulty_crawl_converges_to_fault_free_results():
    baseline = Study(_population()).run()
    assert set(baseline.dataset.status_counts()) == {STATUS_SUCCESS}

    plan = FaultPlan(seed=11, transient_rate=0.25)
    faulty = Study(_population(), StudyConfig(fault_plan=plan)).run()
    assert set(faulty.dataset.status_counts()) == {STATUS_SUCCESS}
    assert plan.failure_log()  # faults actually fired
    assert _leak_signature(faulty.events) == _leak_signature(baseline.events)


def test_same_seed_reproduces_identical_failure_log():
    runs = []
    for _ in range(2):
        plan = FaultPlan(seed=7, transient_rate=0.25)
        dataset = StudyCrawler(_population(), fault_plan=plan).crawl()
        runs.append((plan.failure_log(), dataset.fingerprint()))
    assert runs[0][0] and runs[0][0] == runs[1][0]
    assert runs[0][1] == runs[1][1]


def test_retries_are_visible_in_capture_log():
    plan = FaultPlan(seed=11, transient_rate=0.25)
    dataset = StudyCrawler(_population(), fault_plan=plan).crawl()
    fault_entries = [entry for entry in dataset.log.entries
                     if entry.blocked_by
                     and entry.blocked_by.startswith("fault:")]
    assert fault_entries  # failed attempts are recorded, never hidden
    assert all(entry.response is None for entry in fault_entries)


def test_dead_origin_is_quarantined_not_dropped():
    population = _population()
    dead = sorted(population.sites)[0]
    plan = FaultPlan(seed=7, transient_rate=0.1, dead_origins=[dead])
    dataset = StudyCrawler(population, fault_plan=plan).crawl()

    counts = dataset.status_counts()
    assert counts[STATUS_QUARANTINED] == 1
    assert sum(counts.values()) == len(population.sites)
    assert dataset.quarantined_sites() == [dead]
    flow = dataset.flows[dead]
    assert flow.failure_class == FAILURE_PERMANENT
    assert flow.attempts >= 1 and flow.failure_kind is not None
    assert dataset.failure_class_counts() == {FAILURE_PERMANENT: 1}

    report = render_crawl_health(dataset, plan)
    assert STATUS_QUARANTINED in report and dead in report
    assert "dead_origin" in report


def test_quarantined_sites_survive_analysis():
    population = _population()
    dead = sorted(population.sites)[0]
    plan = FaultPlan(seed=7, transient_rate=0.1, dead_origins=[dead])
    result = Study(population, StudyConfig(fault_plan=plan)).run()
    assert result.quarantined_sites() == [dead]
    assert dead not in result.analysis.senders()


def test_checkpoint_resume_matches_uninterrupted_run(tmp_path):
    full = StudyCrawler(
        _population(),
        fault_plan=FaultPlan(seed=21, transient_rate=0.25)).crawl()

    session = StudyCrawler(
        _population(),
        fault_plan=FaultPlan(seed=21, transient_rate=0.25)).start()
    for _ in range(3):
        session.step()
    path = str(tmp_path / "crawl.ckpt")
    session.save(path)
    del session  # the interrupted crawl is gone; only the file survives

    resumed = CrawlSession.load(path)
    assert resumed.crawled_count == 3
    assert len(resumed.remaining_sites) == _CONFIG["n_sites"] - 3
    dataset = resumed.run()
    assert dataset.fingerprint() == full.fingerprint()
    assert dataset.status_counts() == full.status_counts()


def test_checkpoint_after_every_site(tmp_path):
    path = str(tmp_path / "crawl.ckpt")
    session = StudyCrawler(
        _population(),
        fault_plan=FaultPlan(seed=3, transient_rate=0.2)).start()
    while not session.done:
        session.step()
        session.save(path)
    expected = session.finish().fingerprint()
    assert CrawlSession.load(path).run().fingerprint() == expected


def test_checkpoint_rejects_garbage(tmp_path):
    path = tmp_path / "bad.ckpt"
    path.write_bytes(b"not a checkpoint")
    with pytest.raises(CheckpointError):
        CrawlSession.load(str(path))


def test_checkpoint_save_is_atomic(tmp_path):
    session = StudyCrawler(_population()).start()
    path = str(tmp_path / "crawl.ckpt")
    session.save(path)
    assert os.listdir(str(tmp_path)) == ["crawl.ckpt"]


def test_truncated_checkpoint_is_rejected_with_clear_error(tmp_path):
    """A checkpoint cut short at any point — header, length field, or
    payload — fails loudly as a CheckpointError naming the truncation,
    never by surfacing unpickled garbage to the resume path."""
    path = str(tmp_path / "crawl.ckpt")
    StudyCrawler(_population()).start().save(path)
    blob = open(path, "rb").read()
    from repro.crawler.checkpoint import CHECKPOINT_MAGIC, _LENGTH_STRUCT
    header = len(CHECKPOINT_MAGIC)
    cases = {
        "mid-header": blob[:header - 3],
        "mid-length": blob[:header + _LENGTH_STRUCT.size - 2],
        "mid-payload": blob[:header + _LENGTH_STRUCT.size + 100],
        "missing-digest": blob[:-5],
    }
    for label, truncated in cases.items():
        torn = tmp_path / ("torn-%s.ckpt" % label)
        torn.write_bytes(truncated)
        with pytest.raises(CheckpointError) as excinfo:
            CrawlSession.load(str(torn))
        message = str(excinfo.value)
        assert "truncated" in message or "checkpoint" in message, label


def test_corrupted_checkpoint_payload_fails_integrity_check(tmp_path):
    path = str(tmp_path / "crawl.ckpt")
    StudyCrawler(_population()).start().save(path)
    blob = bytearray(open(path, "rb").read())
    blob[len(blob) // 2] ^= 0xFF      # flip one payload byte
    (tmp_path / "crawl.ckpt").write_bytes(bytes(blob))
    with pytest.raises(CheckpointError) as excinfo:
        CrawlSession.load(path)
    assert "digest mismatch" in str(excinfo.value)


def test_plain_crawl_without_faults_unchanged():
    # No plan, no retry policy: the historical single-shot network path.
    crawler = StudyCrawler(_population())
    assert crawler.retry_policy is None
    dataset = crawler.crawl()
    assert set(dataset.status_counts()) == {STATUS_SUCCESS}
    assert dataset.retried_flow_count() == 0


def test_fault_plan_implies_default_retry_policy():
    crawler = StudyCrawler(_population(), fault_plan=FaultPlan())
    assert isinstance(crawler.retry_policy, RetryPolicy)
    # The convergence contract: the retry budget and breaker threshold
    # must both exceed the plan's worst-case fault burst.
    assert crawler.retry_policy.max_attempts > FaultPlan().max_consecutive


def test_backoff_delay_is_deterministic_and_bounded():
    policy = RetryPolicy(base_delay=0.5, backoff_factor=2.0, max_delay=4.0,
                        jitter=0.1)
    delays = [policy.backoff_delay(attempt, "www.shop.example")
              for attempt in range(1, 8)]
    assert delays == [policy.backoff_delay(attempt, "www.shop.example")
                      for attempt in range(1, 8)]
    assert all(0.0 < delay <= 4.0 * 1.1 for delay in delays)
    assert delays[1] > delays[0]


def test_taxonomy_is_exhaustive():
    from repro.crawler import ALL_STATUSES
    assert set(STATUS_TAXONOMY) == set(ALL_STATUSES)
    assert STATUS_TAXONOMY[STATUS_SUCCESS] is None
    classes = set(STATUS_TAXONOMY.values()) - {None}
    assert classes == {FAILURE_TRANSIENT, FAILURE_PERMANENT}


def test_protocol_misuse_raises_typeerror():
    population = _population()
    with pytest.raises(TypeError):
        StudyCrawler(population, extension=object())
    with pytest.raises(TypeError):
        StudyCrawler(population, firewall="not a firewall")


def test_real_implementations_satisfy_protocols():
    from repro.blocklist import AdblockExtension, RuleSet
    from repro.browser import ContentBlocker, OutboundFirewall
    from repro.core import CandidateTokenSet
    from repro.core.persona import DEFAULT_PERSONA
    from repro.mitigation import PiiFirewall
    assert isinstance(AdblockExtension(RuleSet([])), ContentBlocker)
    assert isinstance(PiiFirewall(CandidateTokenSet(DEFAULT_PERSONA)),
                      OutboundFirewall)
