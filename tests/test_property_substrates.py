"""Property-based tests over the substrate data structures."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.hashes import encoders
from repro.netsim import (
    Cookie,
    Headers,
    Url,
    decode_query,
    encode_query,
    percent_decode,
    percent_encode,
)
from repro.psl import default_list

_HOST_LABEL = st.text(alphabet=string.ascii_lowercase + string.digits,
                      min_size=1, max_size=8)
_HOSTS = st.builds(lambda labels: ".".join(labels + ["com"]),
                   st.lists(_HOST_LABEL, min_size=1, max_size=3))
_TEXT = st.text(min_size=0, max_size=40)


@given(_TEXT)
def test_percent_encoding_round_trip(value):
    assert percent_decode(percent_encode(value)) == value


@given(st.lists(st.tuples(_TEXT.filter(bool), _TEXT), max_size=6))
def test_query_round_trip(pairs):
    assert decode_query(encode_query(pairs)) == pairs


@given(_HOSTS, st.lists(st.tuples(_TEXT.filter(bool), _TEXT), max_size=4))
def test_url_string_round_trip(host, pairs):
    url = Url(scheme="https", host=host, path="/a/b",
              query=tuple(pairs))
    assert Url.parse(str(url)) == url


@given(st.binary(max_size=64))
def test_base58_round_trip_property(data):
    assert encoders.base58_decode(encoders.base58_encode(data)) == data


@given(st.binary(max_size=64))
def test_compression_round_trips(data):
    assert encoders.deflate_decode(encoders.deflate_encode(data)) == data


@given(_HOSTS)
def test_registrable_domain_is_suffix_of_host(host):
    registrable = default_list().registrable_domain(host)
    if registrable is not None:
        assert host == registrable or host.endswith("." + registrable)
        # Idempotence: the registrable domain of the registrable domain
        # is itself.
        assert default_list().registrable_domain(registrable) == registrable


@given(_HOSTS, _HOSTS)
def test_same_party_symmetric(host_a, host_b):
    psl = default_list()
    assert psl.same_party(host_a, host_b) == psl.same_party(host_b, host_a)


@given(_HOSTS)
def test_same_party_reflexive(host):
    assert default_list().same_party(host, host)


@given(st.lists(st.tuples(
    st.text(alphabet=string.ascii_letters + "-", min_size=1, max_size=10),
    _TEXT), max_size=8))
def test_headers_preserve_order_and_multiplicity(items):
    headers = Headers(items)
    assert headers.items() == items
    for name, _ in items:
        values = [v for n, v in items if n.lower() == name.lower()]
        assert headers.get_all(name) == values


@given(st.sampled_from(["/", "/a", "/a/", "/a/b", "/account"]),
       st.sampled_from(["/", "/a", "/a/b", "/a/bc", "/account/login"]))
def test_cookie_path_match_prefix_property(cookie_path, request_path):
    cookie = Cookie(name="c", value="1", domain="x.com", path=cookie_path)
    if cookie.path_matches(request_path):
        assert request_path.startswith(cookie_path.rstrip("/")) or \
            request_path == cookie_path


@given(_HOSTS)
def test_host_only_cookie_matches_exactly_one_host(host):
    cookie = Cookie(name="c", value="1", domain=host, host_only=True)
    assert cookie.domain_matches(host)
    assert not cookie.domain_matches("prefix." + host)
