"""Compiled-vs-interpreted blocklist matcher equivalence.

The compiled engine (:meth:`repro.blocklist.RuleSet.compile`) replaces
the interpreted candidate enumeration (regex tokenisation + one index
probe per token) with a single Aho–Corasick pass.  Everything here
holds the two engines to *observable identity*: for every filter and
every request drawn from the seeded population, the same
:class:`~repro.blocklist.MatchResult` — same verdict, same filter
objects, in the same order.
"""

from __future__ import annotations

import pytest

from repro.blocklist import RequestContext, RuleSet, easyprivacy_text
from repro.blocklist.evaluate import default_rule_sets
from repro.blocklist.matcher import CompiledRuleSet
from repro.core.aho import AhoCorasick
from repro.crawler import GeneratedPopulationSpec, StudyCrawler
from repro.psl import default_list
from repro.websim.generator import GeneratorConfig

_CONFIG = GeneratorConfig(n_sites=12, n_trackers=6, leak_probability=0.6,
                          confirmation_probability=0.5)

_RESOURCE_TYPES = ("script", "image", "xmlhttprequest", "subdocument",
                   "other")


def _resource_type_for(url: str) -> str:
    path = url.split("?", 1)[0]
    if path.endswith(".js"):
        return "script"
    if path.endswith((".gif", ".png", ".jpg")):
        return "image"
    return "other"


def _crawled_contexts(seed: int):
    """Request contexts for every exchange of a seeded study crawl."""
    population = GeneratedPopulationSpec(seed=seed, config=_CONFIG).build()
    dataset = StudyCrawler(population).crawl()
    psl = default_list()
    contexts = []
    for entry in dataset.log.entries:
        url = str(entry.request.url)
        host = url.split("://", 1)[-1].split("/", 1)[0]
        contexts.append(RequestContext(
            url=url,
            resource_type=_resource_type_for(url),
            page_domain=psl.registrable_domain(entry.site) or entry.site,
            is_third_party=psl.is_third_party(host, entry.site)))
    return contexts


def _filter_probe_urls(rules: RuleSet):
    """One URL per filter, synthesised to exercise that filter's pattern."""
    urls = []
    for filter_ in rules.all_filters():
        pattern = filter_.pattern.lstrip("|").lstrip("@")
        body = pattern.replace("^", "/").replace("*", "ab").rstrip("|")
        if "://" not in body:
            body = "tracker.example/" + body.lstrip("/")
        urls.append("https://" + body.split("://", 1)[-1])
    return urls


@pytest.fixture(scope="module")
def rule_sets():
    sets = dict(default_rule_sets())
    sets["easyprivacy-only"] = RuleSet.from_text(easyprivacy_text())
    return sets


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_same_match_result_for_every_crawled_request(seed, rule_sets):
    """Property: crawled request × rule set -> identical MatchResult."""
    contexts = _crawled_contexts(seed)
    assert contexts, "seeded crawl produced no requests"
    for name, rules in rule_sets.items():
        compiled = rules.compile()
        for context in contexts:
            interpreted = rules.match(context)
            assert compiled.match(context) == interpreted, (
                "%s: engines disagree on %s" % (name, context.url))


def test_same_match_result_for_every_filter_probe(rule_sets):
    """Property: one synthesised URL per filter -> identical MatchResult.

    This drives both engines through every filter's own pattern (not
    just the ones the crawl happens to hit), including exception rules.
    """
    for name, rules in rule_sets.items():
        compiled = rules.compile()
        for url in _filter_probe_urls(rules):
            for resource_type in _RESOURCE_TYPES:
                context = RequestContext(
                    url=url, resource_type=resource_type,
                    page_domain="shop.example", is_third_party=True)
                interpreted = rules.match(context)
                result = compiled.match(context)
                assert result == interpreted, (
                    "%s: engines disagree on %s [%s]"
                    % (name, url, resource_type))
                # Same *objects*, not just equal values: the compiled
                # set shares the source set's filters.
                assert result.blocking_filter is interpreted.blocking_filter
                assert (result.exception_filter
                        is interpreted.exception_filter)


def test_candidate_enumeration_order_is_identical(rule_sets):
    """match() takes the first matching filter, so order is semantics."""
    rules = rule_sets["combined"]
    compiled = rules.compile()
    urls = _filter_probe_urls(rules)[:200] + [
        "https://www.facebook.com/tr?ev=identify&udff%5Bem%5D=abcd",
        "https://api.custora.com/v1/track?uid=abcd",
    ]
    for url in urls:
        naive = [id(f) for f in rules._candidates(url)]
        fast = [id(f) for f in compiled._candidates(url)]
        assert naive == fast, "candidate order diverged for %s" % url


def test_token_boundary_edge_cases():
    """Automaton hits must only count on maximal token runs."""
    rules = RuleSet.from_text("||tracker.example^\n/beacon/\n")
    compiled = rules.compile()
    for url in [
        "https://tracker.example/x",        # token at host position
        "https://nottracker.examplelong/x",  # token inside a longer run
        "https://a.example/beacon/1",        # token bounded by separators
        "https://a.example/xbeacony/1",      # token embedded in a run
        "https://a.example/p?q=beacon",      # token at end of URL
        "HTTPS://TRACKER.EXAMPLE/X",         # case folding
    ]:
        context = RequestContext(url=url, resource_type="image",
                                 page_domain="shop.example",
                                 is_third_party=True)
        assert compiled.match(context) == rules.match(context), url


def test_compiled_rule_set_is_immutable(rule_sets):
    compiled = rule_sets["combined"].compile()
    assert isinstance(compiled, CompiledRuleSet)
    with pytest.raises(TypeError):
        compiled.add(rule_sets["combined"].all_filters()[0])


def test_compile_shares_filters_not_copies(rule_sets):
    rules = rule_sets["easyprivacy-only"]
    compiled = rules.compile()
    assert compiled.all_filters() == rules.all_filters()
    assert len(compiled) == len(rules)
    assert compiled._block_index is rules._block_index


def test_aho_iter_hits_matches_iter_matches():
    automaton = AhoCorasick()
    for pattern in ("he", "she", "his", "hers"):
        automaton.add(pattern, payload=pattern.upper())
    automaton.build()
    text = "ushers and his hers"
    matches = [(m.end, m.pattern, m.payload)
               for m in automaton.iter_matches(text)]
    hits = list(automaton.iter_hits(text))
    assert hits == matches
    assert matches  # the text does contain patterns
