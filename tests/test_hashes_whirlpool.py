"""Whirlpool against the ISO/IEC 10118-3 test vectors."""

import pytest

from repro.hashes.whirlpool import whirlpool_digest, whirlpool_hexdigest

ISO_VECTORS = [
    (b"",
     "19fa61d75522a4669b44e39c1d2e1726c530232130d407f89afee0964997f7a7"
     "3e83be698b288febcf88e3e03c4f0757ea8964e59b63d93708b138cc42a66eb3"),
    (b"a",
     "8aca2602792aec6f11a67206531fb7d7f0dff59413145e6973c45001d0087b42"
     "d11bc645413aeff63a42391a39145a591a92200d560195e53b478584fdae231a"),
    (b"abc",
     "4e2448a4c6f486bb16b6562c73b4020bf3043e3a731bce721ae1b303d97e6d4c"
     "7181eebdb6c57e277d0e34957114cbd6c797fc9d95d8b582d225292076d4eef5"),
    (b"message digest",
     "378c84a4126e2dc6e56dcc7458377aac838d00032230f53ce1f5700c0ffb4d3b"
     "8421557659ef55c106b4b52ac5a4aaa692ed920052838f3362e86dbd37a8903e"),
    (b"abcdefghijklmnopqrstuvwxyz",
     "f1d754662636ffe92c82ebb9212a484a8d38631ead4238f5442ee13b8054e41b"
     "08bf2a9251c30b6a0b8aae86177ab4a6f68f673e7207865d5d9819a3dba4eb3b"),
]


@pytest.mark.parametrize("message,expected", ISO_VECTORS)
def test_iso_vectors(message, expected):
    assert whirlpool_hexdigest(message) == expected


def test_digest_is_64_bytes():
    assert len(whirlpool_digest(b"pii")) == 64


def test_multi_block_message():
    # > 64 bytes forces multiple Miyaguchi-Preneel iterations.
    digest = whirlpool_hexdigest(b"z" * 200)
    assert len(digest) == 128
    assert digest != whirlpool_hexdigest(b"z" * 201)


def test_length_padding_boundary():
    # Padding adds the 256-bit length field; 32 bytes of room is the edge.
    for length in (31, 32, 33, 63, 64, 65):
        assert whirlpool_digest(b"p" * length)
