"""Privacy-policy generation and classification (Table 3)."""

import pytest

from repro.policy import (
    classify_policies,
    classify_policy,
    generate_policy,
    policies_for_sites,
    table3,
)
from repro.websim.shopping import (
    POLICY_CLASSES,
    POLICY_NO_DESCRIPTION,
    POLICY_NOT_SHARED,
    POLICY_NOT_SPECIFIC,
    POLICY_SPECIFIC,
)


@pytest.mark.parametrize("policy_class", POLICY_CLASSES)
@pytest.mark.parametrize("variant", range(6))
def test_every_variant_classifies_to_its_class(policy_class, variant):
    document = generate_policy("shop.example", policy_class, variant)
    verdict = classify_policy("shop.example", document)
    assert verdict.disclosure_class == policy_class


def test_all_generated_policies_acknowledge_collection():
    for policy_class in POLICY_CLASSES:
        document = generate_policy("shop.example", policy_class, 0)
        assert classify_policy("s", document).acknowledges_collection


def test_specific_policy_names_recipients():
    document = generate_policy("shop.example", POLICY_SPECIFIC, 0)
    verdict = classify_policy("s", document)
    assert verdict.names_recipients
    assert verdict.mentions_sharing


def test_denial_wins_over_sharing_vocabulary():
    # "we do not share ... with third parties" contains sharing words.
    document = generate_policy("shop.example", POLICY_NOT_SHARED, 0)
    verdict = classify_policy("s", document)
    assert verdict.denies_sharing
    assert verdict.disclosure_class == POLICY_NOT_SHARED


def test_silent_policy_classified_no_description():
    document = generate_policy("shop.example", POLICY_NO_DESCRIPTION, 1)
    assert "third part" not in document.lower()
    verdict = classify_policy("s", document)
    assert verdict.disclosure_class == POLICY_NO_DESCRIPTION


def test_unknown_class_rejected():
    with pytest.raises(ValueError):
        generate_policy("shop.example", "mystery-class")


def test_policies_for_sites_vary_phrasing():
    documents = policies_for_sites({
        "a.example": POLICY_NOT_SPECIFIC,
        "b.example": POLICY_NOT_SPECIFIC,
        "c.example": POLICY_NOT_SPECIFIC,
    })
    # Different variants: the sharing clauses should not all be identical.
    bodies = set(documents.values())
    assert len(bodies) == 3


def test_table3_aggregation():
    verdicts = classify_policies(policies_for_sites({
        "a.example": POLICY_NOT_SPECIFIC,
        "b.example": POLICY_SPECIFIC,
        "c.example": POLICY_NO_DESCRIPTION,
        "d.example": POLICY_NOT_SHARED,
        "e.example": POLICY_NOT_SPECIFIC,
    }))
    counts = table3(verdicts)
    assert counts[POLICY_NOT_SPECIFIC] == 2
    assert counts[POLICY_SPECIFIC] == 1
    assert counts[POLICY_NO_DESCRIPTION] == 1
    assert counts[POLICY_NOT_SHARED] == 1


def test_classifier_on_freeform_text():
    text = ("Privacy. We collect personal information such as your email "
            "address. We may share your data with advertising partners.")
    assert classify_policy("s", text).disclosure_class == \
        POLICY_NOT_SPECIFIC
