"""Endpoint integration: a live service on an ephemeral port.

Every endpoint documented in docs/SERVICE.md is exercised here over
real HTTP — ``urllib`` against ``127.0.0.1`` — including the SSE
stream's replay-then-follow behaviour, the queue-full backpressure
contract (503 + ``Retry-After``), and the error statuses (400, 404,
405, 409).

Two service instances back the tests: ``service`` (one runner) for the
happy paths, and ``parked`` (zero runners, capacity one) where jobs
deterministically stay queued — that is what makes the backpressure
and not-ready assertions race-free.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceConfig, StudyService

TIMEOUT = 60.0

SPEC = {"schema": 1, "kind": "study", "seed": 7, "sites": 6,
        "trackers": 3, "workers": 2}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    config = ServiceConfig(port=0, jobs_dir=str(
        tmp_path_factory.mktemp("jobs")), runners=1, queue_size=4)
    svc = StudyService(config)
    svc.start()
    svc.start_in_thread()
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def base(service):
    return "http://127.0.0.1:%d" % service.port


@pytest.fixture(scope="module")
def parked(tmp_path_factory):
    """Zero runners, capacity one: jobs stay queued forever."""
    config = ServiceConfig(port=0, jobs_dir=str(
        tmp_path_factory.mktemp("parked")), runners=0, queue_size=1)
    svc = StudyService(config)
    svc.start()
    svc.start_in_thread()
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def parked_base(parked):
    return "http://127.0.0.1:%d" % parked.port


def fetch(url, payload=None, method=None):
    """(status, headers, parsed body) without raising on 4xx/5xx."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=TIMEOUT) as resp:
            return resp.status, dict(resp.headers), _parse(resp)
    except urllib.error.HTTPError as exc:
        body = exc.read().decode()
        try:
            parsed = json.loads(body)
        except ValueError:
            parsed = body
        return exc.code, dict(exc.headers), parsed


def _parse(resp):
    body = resp.read().decode()
    if (resp.headers.get("Content-Type") or "").startswith(
            "application/json"):
        return json.loads(body)
    return body


def sse_frames(url, headers=None):
    """Consume one SSE stream to connection close; yield parsed frames."""
    frames = []
    frame = {}
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=TIMEOUT) as resp:
        assert resp.headers["Content-Type"].startswith("text/event-stream")
        for raw in resp:
            line = raw.decode().rstrip("\n")
            if not line:
                if frame:
                    frames.append(frame)
                    frame = {}
                continue
            key, _, value = line.partition(": ")
            frame[key] = value
    return frames


@pytest.fixture(scope="module")
def finished_job(base):
    """One study submitted and run to completion, shared by the reads."""
    status, headers, body = fetch(base + "/studies", payload=SPEC)
    assert status == 202
    assert headers["Location"] == "/studies/%s" % body["id"]
    assert body["state"] == "queued"
    # Following the stream blocks until the job ends — no polling.
    frames = sse_frames(base + body["events"])
    assert json.loads(frames[-1]["data"])["state"] == "complete"
    return body["id"], frames


# -- lifecycle reads ------------------------------------------------------


def test_healthz_reports_capacity(base):
    status, _, body = fetch(base + "/healthz")
    assert status == 200
    assert body["service"] == "repro-serve"
    assert body["accepting"] is True
    assert body["queue"]["capacity"] == 4


def test_healthz_carries_schema_uptime_and_drain_state(base):
    from repro.service.server import HEALTH_SCHEMA_VERSION

    _, _, body = fetch(base + "/healthz")
    assert body["schema"] == HEALTH_SCHEMA_VERSION == 2
    assert body["draining"] is False
    assert body["uptime_seconds"] >= 0
    assert body["queue"]["depth"] >= 0
    # Uptime advances between probes of a live service.
    _, _, later = fetch(base + "/healthz")
    assert later["uptime_seconds"] >= body["uptime_seconds"]


def test_status_document_after_completion(base, finished_job):
    job_id, _ = finished_job
    status, _, body = fetch("%s/studies/%s" % (base, job_id))
    assert status == 200
    assert body["state"] == "complete"
    assert body["id"] == job_id
    assert body["spec"]["seed"] == 7
    assert len(body["fingerprint"]) == 64
    assert body["progress"]["crawled"] == SPEC["sites"]


def test_job_listing_includes_the_job(base, finished_job):
    job_id, _ = finished_job
    status, _, body = fetch(base + "/studies")
    assert status == 200
    assert job_id in [entry["id"] for entry in body["jobs"]]


def test_result_matches_status_fingerprint(base, finished_job):
    job_id, _ = finished_job
    _, _, status_doc = fetch("%s/studies/%s" % (base, job_id))
    code, _, result = fetch("%s/studies/%s/result" % (base, job_id))
    assert code == 200
    assert result["fingerprint"] == status_doc["fingerprint"]
    assert result["kind"] == "study"
    assert "rows" in result["table2"]


def test_trace_download_is_ndjson(base, finished_job):
    job_id, _ = finished_job
    code, headers, body = fetch("%s/studies/%s/trace" % (base, job_id))
    assert code == 200
    assert headers["Content-Type"] == "application/x-ndjson"
    records = [json.loads(line) for line in body.strip().split("\n")]
    assert records[0]["type"] == "meta"
    assert any(r["type"] == "counter" and r["name"] == "crawl.sites"
               and r["value"] == SPEC["sites"] for r in records)


# -- SSE semantics --------------------------------------------------------


def test_sse_ids_are_contiguous_from_zero(finished_job):
    _, frames = finished_job
    assert [int(frame["id"]) for frame in frames] == \
        list(range(len(frames)))


def test_sse_event_order_state_heartbeats_end(finished_job):
    _, frames = finished_job
    kinds = [frame["event"] for frame in frames]
    assert kinds[0] == "state"
    assert kinds[-1] == "end"
    assert kinds.count("end") == 1
    hb = [json.loads(f["data"]) for f in frames if f["event"] == "heartbeat"]
    assert sum(1 for event in hb if not event.get("final")) == SPEC["sites"]


def test_sse_replay_after_completion_is_identical(base, finished_job):
    """A client connecting *after* the job finished replays the whole
    history and the stream still terminates with the end event."""
    job_id, live_frames = finished_job
    replayed = sse_frames("%s/studies/%s/events" % (base, job_id))
    assert replayed == live_frames


def test_sse_reconnect_resumes_after_last_event_id(base, finished_job):
    """``Last-Event-ID: N`` replays from frame N+1 — the standard SSE
    reconnect contract, so a dropped client never re-processes frames."""
    job_id, live_frames = finished_job
    url = "%s/studies/%s/events" % (base, job_id)
    resumed = sse_frames(url, headers={"Last-Event-ID": "2"})
    assert resumed == live_frames[3:]
    assert int(resumed[0]["id"]) == 3


def test_sse_reconnect_past_the_end_yields_nothing(base, finished_job):
    job_id, live_frames = finished_job
    url = "%s/studies/%s/events" % (base, job_id)
    last_id = live_frames[-1]["id"]
    assert sse_frames(url, headers={"Last-Event-ID": last_id}) == []


def test_sse_garbage_last_event_id_replays_everything(base, finished_job):
    job_id, live_frames = finished_job
    url = "%s/studies/%s/events" % (base, job_id)
    for bogus in ("not-a-number", "-7", ""):
        assert sse_frames(url, headers={"Last-Event-ID": bogus}) \
            == live_frames


# -- submission errors ----------------------------------------------------


def test_submit_rejects_malformed_json(base):
    request = urllib.request.Request(
        base + "/studies", data=b"{not json",
        headers={"Content-Type": "application/json"})
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=TIMEOUT)
    assert excinfo.value.code == 400
    status, _, body = fetch(base + "/studies", payload={"sites": -3})
    assert status == 400
    assert "sites" in body["error"]


def test_submit_rejects_unknown_spec_keys(base):
    status, _, body = fetch(base + "/studies", payload={"sties": 4})
    assert status == 400
    assert "unknown" in body["error"]


def test_unknown_job_and_unknown_route_are_404(base):
    assert fetch(base + "/studies/job-999999")[0] == 404
    assert fetch(base + "/studies/job-999999/result")[0] == 404
    assert fetch(base + "/nope")[0] == 404


def test_wrong_method_is_405_with_allow_header(base):
    status, headers, _ = fetch(base + "/studies", method="DELETE")
    assert status == 405
    assert "POST" in headers["Allow"]
    status, headers, _ = fetch(base + "/healthz", payload={})
    assert status == 405
    assert "GET" in headers["Allow"]


# -- backpressure and not-ready states ------------------------------------


def test_queue_full_returns_503_with_retry_after(parked_base):
    first = fetch(parked_base + "/studies", payload=SPEC)
    assert first[0] == 202
    status, headers, body = fetch(parked_base + "/studies", payload=SPEC)
    assert status == 503
    assert int(headers["Retry-After"]) >= 1
    assert body["retry_after"] == int(headers["Retry-After"])
    assert "full" in body["error"]


def test_result_before_completion_is_409(parked_base, parked):
    job_id = parked.store.list()[0].id
    status, _, body = fetch("%s/studies/%s/result" % (parked_base, job_id))
    assert status == 409
    assert body["state"] == "queued"


def test_trace_before_completion_is_409(parked_base, parked):
    job_id = parked.store.list()[0].id
    assert fetch("%s/studies/%s/trace" % (parked_base, job_id))[0] == 409


# -- parity with the CLI path ---------------------------------------------


def test_served_fingerprint_equals_cli_run(base, finished_job):
    """Acceptance criterion: POST → SSE → result fingerprint is
    bit-identical to the same spec via ``Study.crawl()`` directly."""
    from repro.core.pipeline import Study
    from repro.obs import Recorder
    from repro.service import JobSpec

    job_id, _ = finished_job
    _, _, served = fetch("%s/studies/%s/result" % (base, job_id))
    spec = JobSpec.from_dict(SPEC)
    pspec = spec.population_spec()
    study = Study(pspec.build(),
                  config=spec.study_config(recorder=Recorder()),
                  population_spec=pspec)
    assert study.crawl().dataset.fingerprint() == served["fingerprint"]


def test_crowd_job_over_http(base):
    payload = {"kind": "crowd", "seed": 5, "sites": 8, "trackers": 3,
               "contributors": 2, "overlap": 0.5}
    status, _, body = fetch(base + "/studies", payload=payload)
    assert status == 202
    frames = sse_frames(base + body["events"])
    end = json.loads(frames[-1]["data"])
    assert end["state"] == "complete"
    hb = [f for f in frames if f["event"] == "heartbeat"]
    assert len(hb) == 2   # one per contributor
    code, _, result = fetch("%s/studies/%s/result" % (base, body["id"]))
    assert code == 200
    assert result["kind"] == "crowd"
    # Crowd runs record no trace: documented as 404, not an error page.
    assert fetch("%s/studies/%s/trace" % (base, body["id"]))[0] == 404


# -- /metrics -------------------------------------------------------------


def scrape(base):
    from repro.obs.exposition import parse_exposition

    with urllib.request.urlopen(base + "/metrics",
                                timeout=TIMEOUT) as resp:
        assert resp.status == 200
        assert resp.headers["Content-Type"] == \
            "text/plain; version=0.0.4; charset=utf-8"
        return parse_exposition(resp.read().decode("utf-8"))


def test_metrics_serves_the_required_series(base, finished_job):
    values = scrape(base)
    assert values['repro_service_submissions_total{outcome="accepted"}'] >= 1
    assert values['repro_service_jobs{state="complete"}'] >= 1
    assert values["repro_service_queue_capacity"] == 4
    assert values["repro_service_accepting"] == 1
    assert values["repro_service_uptime_seconds"] > 0
    assert values["repro_service_submit_seconds_count"] >= 1
    assert values["repro_service_job_run_seconds_count"] >= 1
    assert values['repro_service_jobs_finished_total{state="complete"}'] >= 1
    assert values['repro_http_requests_total{method="GET",status="200"}'] >= 1
    assert values["repro_http_bytes_sent_total"] > 0


def test_metrics_renders_every_job_state_even_at_zero(base):
    from repro.service.jobs import JOB_STATES

    values = scrape(base)
    for state in JOB_STATES:
        assert 'repro_service_jobs{state="%s"}' % state in values


def test_metrics_update_across_a_job_lifecycle(base):
    """Counters move between scrapes bracketing a submit + run: the
    registry is live service state, not a static page."""
    before = scrape(base)

    def delta(values, series):
        return values.get(series, 0.0) - before.get(series, 0.0)

    # An invalid spec counts as an "invalid" submission, nothing else.
    assert fetch(base + "/studies", payload={"sites": -1})[0] == 400
    mid = scrape(base)
    assert delta(mid, 'repro_service_submissions_total'
                      '{outcome="invalid"}') == 1
    assert delta(mid, 'repro_service_submissions_total'
                      '{outcome="accepted"}') == 0

    # A real job: accepted, run to completion, latency observed.
    status, _, body = fetch(base + "/studies", payload=SPEC)
    assert status == 202
    frames = sse_frames(base + body["events"])
    assert json.loads(frames[-1]["data"])["state"] == "complete"
    after = scrape(base)
    assert delta(after, 'repro_service_submissions_total'
                        '{outcome="accepted"}') == 1
    assert delta(after, 'repro_service_jobs_finished_total'
                        '{state="complete"}') == 1
    assert delta(after, "repro_service_job_run_seconds_count") == 1
    assert delta(after, "repro_service_submit_seconds_count") == 1
    assert delta(after, 'repro_http_requests_total'
                        '{method="POST",status="202"}') == 1
    assert delta(after, "repro_http_bytes_sent_total") > 0


def test_metrics_counts_rejected_submissions(parked_base):
    """On the parked service (capacity 1) a second submit is rejected
    and the scrape says so — whichever test filled the queue first."""
    before = scrape(parked_base)
    status = fetch(parked_base + "/studies", payload=SPEC)[0]
    after = scrape(parked_base)
    outcome = "accepted" if status == 202 else "rejected"
    assert status in (202, 503)
    series = 'repro_service_submissions_total{outcome="%s"}' % outcome
    assert after[series] - before.get(series, 0.0) == 1
    assert after["repro_service_queue_capacity"] == 1
    assert after["repro_service_queue_depth"] >= 1


def test_metrics_is_get_only(base):
    status, headers, _ = fetch(base + "/metrics", payload={})
    assert status == 405
    assert "GET" in headers["Allow"]


def test_sse_subscriber_gauge_returns_to_zero(base, finished_job):
    """Replay streams open and close promptly; once no client is
    connected the gauge reads 0 again."""
    job_id, _ = finished_job
    sse_frames("%s/studies/%s/events" % (base, job_id))
    assert scrape(base)["repro_service_sse_subscribers"] == 0
