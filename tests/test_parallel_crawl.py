"""Parallel sharded crawling: fingerprint invariance, sharding, resume."""

import os

import pytest

from repro.core import Study, StudyConfig
from repro.crawler import (
    CheckpointError,
    CrawlSession,
    GeneratedPopulationSpec,
    ParallelCrawler,
    PrebuiltPopulationSpec,
    ShardLayout,
    StudyCrawler,
    default_shard_count,
    merge_shard_datasets,
    run_shard_job,
    shard_domains,
    stable_site_order,
)
from repro.netsim.faults import FaultPlan
from repro.websim.generator import GeneratorConfig, generate_population

_CONFIG = GeneratorConfig(n_sites=10, n_trackers=4, leak_probability=0.6,
                          confirmation_probability=0.4)
_NUM_SHARDS = 5


def _spec(seed):
    return GeneratedPopulationSpec(seed=seed, config=_CONFIG)


def _fingerprint(seed, workers, fault_seed=None, num_shards=_NUM_SHARDS):
    plan = (FaultPlan(seed=fault_seed, transient_rate=0.25)
            if fault_seed is not None else None)
    return ParallelCrawler(_spec(seed), workers=workers,
                           num_shards=num_shards,
                           fault_plan=plan).crawl().fingerprint()


# -- sharding ------------------------------------------------------------


def test_stable_site_order_is_input_order_independent():
    domains = ["b.example", "a.example", "c.example"]
    assert stable_site_order(domains) == stable_site_order(reversed(domains))


def test_stable_site_order_rejects_duplicates():
    with pytest.raises(ValueError):
        stable_site_order(["a.example", "a.example"])


def test_shard_domains_partitions_without_loss():
    domains = ["site%02d.example" % i for i in range(37)]
    shards = shard_domains(domains, 4)
    assert len(shards) == 4
    merged = [domain for shard in shards for domain in shard]
    assert sorted(merged) == sorted(domains)


def test_shard_layout_digest_tracks_membership_and_count():
    domains = ["site%02d.example" % i for i in range(12)]
    base = ShardLayout.for_domains(domains, 3)
    assert base.digest() == ShardLayout.for_domains(domains, 3).digest()
    assert base.digest() != ShardLayout.for_domains(domains, 4).digest()
    assert base.digest() != ShardLayout.for_domains(domains[:-1], 3).digest()
    assert base.site_count == 12


def test_default_shard_count_is_worker_independent():
    assert default_shard_count(3) == 3
    assert default_shard_count(5000) == 16
    assert default_shard_count(0) == 1


def test_shard_layout_info_bounds():
    layout = ShardLayout.for_domains(["a.example", "b.example"], 2)
    with pytest.raises(IndexError):
        layout.info(2)


# -- the fingerprint contract -------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_parallel_fingerprint_equals_serial_fingerprint(seed):
    """Seeds 0-4, workers {1, 2, 4, 7}: merged == serial, faults off/on."""
    serial = _fingerprint(seed, workers=1)
    serial_faulty = _fingerprint(seed, workers=1, fault_seed=seed + 100)
    assert serial != serial_faulty  # faults actually change the crawl
    for workers in (2, 4, 7):
        assert _fingerprint(seed, workers=workers) == serial
        assert _fingerprint(seed, workers=workers,
                            fault_seed=seed + 100) == serial_faulty


def test_single_shard_engine_matches_legacy_serial_crawl():
    """One shard == the historical StudyCrawler path, site-for-site."""
    population = generate_population(seed=2, config=_CONFIG)
    order = stable_site_order(population.sites)
    legacy = StudyCrawler(population).crawl(
        [population.sites[domain] for domain in order])
    engine = ParallelCrawler(_spec(2), workers=1, num_shards=1).crawl()
    assert engine.fingerprint() == legacy.fingerprint()


def test_prebuilt_population_spec_matches_generated_spec():
    population = generate_population(seed=3, config=_CONFIG)
    via_prebuilt = ParallelCrawler(PrebuiltPopulationSpec(population),
                                   workers=1, num_shards=3).crawl()
    via_generated = ParallelCrawler(_spec(3), workers=1,
                                    num_shards=3).crawl()
    assert via_prebuilt.fingerprint() == via_generated.fingerprint()


def test_run_reports_layout_workers_and_fault_events():
    plan = FaultPlan(seed=5, transient_rate=0.25)
    result = ParallelCrawler(_spec(1), workers=2, num_shards=_NUM_SHARDS,
                             fault_plan=plan).run()
    assert result.workers == 2
    assert result.layout.num_shards == _NUM_SHARDS
    assert result.fault_plan is not None and result.fault_plan.events
    assert plan.events == []  # the caller's plan is never consumed
    assert sum(stats[1] for stats in result.shard_stats) == \
        len(result.dataset.flows)


def test_merge_rejects_overlapping_shards():
    engine = ParallelCrawler(_spec(1), workers=1, num_shards=2)
    results = [run_shard_job(engine._job(0)) for _ in range(2)]
    results[1].index = 1
    with pytest.raises(ValueError):
        merge_shard_datasets(results, engine.population())


def test_merged_dataset_counts_every_site_exactly_once():
    dataset = ParallelCrawler(_spec(4), workers=2,
                              num_shards=_NUM_SHARDS).crawl()
    assert len(dataset.flows) == _CONFIG.n_sites
    assert sorted(dataset.flows) == sorted(
        generate_population(seed=4, config=_CONFIG).sites)


def test_study_runs_parallel_and_serial_to_same_analysis():
    population = generate_population(seed=1, config=_CONFIG)
    serial = Study(population).run()
    parallel = Study(generate_population(seed=1, config=_CONFIG),
                     StudyConfig(workers=2, num_shards=3)).run()
    serial_leaks = {(e.sender, e.receiver, e.token) for e in serial.events}
    parallel_leaks = {(e.sender, e.receiver, e.token)
                      for e in parallel.events}
    # PII-based leakage is shard-independent: the same sender->receiver
    # leaks exist however the crawl was partitioned.
    assert {(s, r) for s, r, _ in parallel_leaks} == \
        {(s, r) for s, r, _ in serial_leaks}


# -- per-shard checkpoint / resume --------------------------------------


def _interrupted_engine(tmp_path, fault_seed=9):
    plan = FaultPlan(seed=fault_seed, transient_rate=0.25)
    engine = ParallelCrawler(_spec(3), workers=2, num_shards=_NUM_SHARDS,
                             fault_plan=plan,
                             checkpoint_dir=str(tmp_path))
    for index in range(engine.layout.num_shards):
        session = engine.shard_session(index)
        if not session.done:
            session.step()  # a partially-crawled shard
        session.save(str(tmp_path / ("shard-%03d.ckpt" % index)))
    return engine


def test_per_shard_resume_converges_after_killed_checkpoint(tmp_path):
    baseline = ParallelCrawler(
        _spec(3), workers=1, num_shards=_NUM_SHARDS,
        fault_plan=FaultPlan(seed=9, transient_rate=0.25)).crawl()
    engine = _interrupted_engine(tmp_path)
    # one worker died without a usable checkpoint: that shard restarts
    os.unlink(str(tmp_path / "shard-001.ckpt"))
    resumed = engine.crawl()
    assert resumed.fingerprint() == baseline.fingerprint()


def test_resume_with_different_layout_is_rejected(tmp_path):
    _interrupted_engine(tmp_path)
    other = ParallelCrawler(_spec(3), workers=2, num_shards=_NUM_SHARDS + 3,
                            fault_plan=FaultPlan(seed=9,
                                                 transient_rate=0.25),
                            checkpoint_dir=str(tmp_path))
    with pytest.raises(CheckpointError):
        other.crawl()


def test_serial_resume_of_shard_checkpoint_is_rejected(tmp_path):
    _interrupted_engine(tmp_path)
    with pytest.raises(CheckpointError):
        CrawlSession.load(str(tmp_path / "shard-000.ckpt"),
                          expect_shard=None)


def test_shard_resume_of_serial_checkpoint_is_rejected(tmp_path):
    engine = ParallelCrawler(_spec(3), workers=1, num_shards=_NUM_SHARDS)
    serial_session = StudyCrawler(
        generate_population(seed=3, config=_CONFIG)).start()
    serial_session.step()
    path = str(tmp_path / "serial.ckpt")
    serial_session.save(path)
    with pytest.raises(CheckpointError):
        CrawlSession.load(path, expect_shard=engine.layout.info(0))
    # and without an expectation the historical behaviour is preserved
    assert CrawlSession.load(path).crawled_count == 1
