"""HTML generation and parsing."""

from repro.websim.html import (
    iter_tags,
    parse_page,
    render_document,
    render_form,
    render_tag,
)


def test_render_and_parse_script_tag():
    html = render_document("T", [render_tag("script", {
        "src": "https://t.net/tag.js", "data-tracker": "t.net"})])
    page = parse_page(html)
    assert len(page.scripts) == 1
    assert page.scripts[0].get("src") == "https://t.net/tag.js"
    assert page.scripts[0].get("data-tracker") == "t.net"


def test_render_and_parse_form():
    form_html = render_form("/submit", "POST", "signup-form",
                            [("email", "email", ""),
                             ("csrf", "hidden", "tok")])
    page = parse_page(render_document("T", [form_html]))
    assert len(page.forms) == 1
    form = page.forms[0]
    assert form.action == "/submit"
    assert form.method == "POST"
    assert form.form_id == "signup-form"
    names = [name for name, _, _ in form.fields]
    assert "email" in names and "csrf" in names
    csrf = next(f for f in form.fields if f[0] == "csrf")
    assert csrf == ("csrf", "hidden", "tok")


def test_parse_multiple_resource_kinds():
    html = render_document("T", [
        render_tag("img", {"src": "https://t.net/p.gif"}),
        render_tag("link", {"rel": "stylesheet", "href": "/style.css"}),
        render_tag("iframe", {"src": "https://ads.net/frame"}),
        render_tag("a", {"href": "/products/x"}),
    ])
    page = parse_page(html)
    assert len(page.images) == 1
    assert len(page.stylesheets) == 1
    assert len(page.iframes) == 1
    assert len(page.anchors) == 1
    kinds = [kind for kind, _ in page.resource_tags()]
    assert set(kinds) == {"image", "stylesheet", "subdocument"}


def test_attribute_escaping_round_trip():
    url = 'https://t.net/p?a=1&b="x"'
    html = render_tag("img", {"src": url})
    page = parse_page(render_document("T", [html]))
    assert page.images[0].get("src") == url


def test_comments_skipped():
    html = '<!-- <script src="https://evil.net/x.js"></script> -->'
    assert parse_page(html).scripts == []


def test_unquoted_attributes():
    page = parse_page('<img src=https://t.net/p.gif width=1>')
    assert page.images[0].get("src") == "https://t.net/p.gif"
    assert page.images[0].get("width") == "1"


def test_malformed_html_tolerated():
    parse_page("<")
    parse_page("<script src='x.js'")
    parse_page("</form>")
    parse_page("<form action='/a'><input name='x'>")  # unclosed form kept
    page = parse_page("<form action='/a'><input name='x'>")
    assert len(page.forms) == 1


def test_iter_tags_names_lowercased():
    tags = iter_tags('<SCRIPT SRC="https://x.net/t.js"></SCRIPT>')
    assert tags[0].name == "script"
    assert tags[0].get("src") == "https://x.net/t.js"


def test_form_method_defaults_to_get():
    page = parse_page('<form action="/s"><input name="e"></form>')
    assert page.forms[0].method == "GET"
