"""The Aho-Corasick candidate scan equals the naive per-token scan.

Companion to ``benchmarks/bench_ablation_lookup.py``: the benchmark
measures the speed difference, this test pins the equivalence on real
crawl traffic.
"""


def test_lookup_strategies_agree_on_crawl_traffic(crawl, tokens):
    texts = []
    for entry in crawl.log:
        if entry.was_blocked:
            continue
        texts.append(str(entry.request.url))
        if len(texts) >= 300:
            break
    all_tokens = tokens.tokens()
    for text in texts:
        automaton_tokens = {match.pattern for match in tokens.scan(text)}
        naive_tokens = {token for token in all_tokens if token in text}
        assert automaton_tokens == naive_tokens
