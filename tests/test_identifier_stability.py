"""§5.1 identifier-stability claims, as tests.

PII-derived identifiers survive everything that kills cookies: jar
clearing, fresh browsers, different devices.  Cookie identifiers do not.
"""

import pytest

from repro.browser import Browser, chrome, vanilla_firefox
from repro.core import CandidateTokenSet, LeakDetector
from repro.crawler import AuthFlowRunner, StudyCrawler
from repro.mailsim import Mailbox
from repro.websim import (
    LeakBehavior,
    TrackerEmbed,
    Website,
    build_default_catalog,
)
from repro.websim.population import Population


@pytest.fixture()
def tracked_population():
    catalog = build_default_catalog()
    site = Website(
        domain="shop.example",
        embeds=[TrackerEmbed(catalog.get("facebook.com"),
                             LeakBehavior(("uri",), (("sha256",),)))])
    return Population(sites={"shop.example": site}, catalog=catalog)


def _detector(population):
    return LeakDetector(CandidateTokenSet(population.persona),
                        catalog=population.catalog,
                        resolver=population.resolver())


def _pii_ids(population, log):
    return {event.token for event in _detector(population).detect(log)
            if event.parameter == "udff[em]"}


def _cookie_ids(browser):
    return {cookie.value for cookie in browser.jar.all_cookies()
            if cookie.name == "tuid"}


def _run_flow(population, browser):
    mailbox = Mailbox(population.persona.email)
    runner = AuthFlowRunner(browser, population.persona, mailbox)
    runner.run(population.sites["shop.example"])


def test_cookie_id_resets_after_clearing(tracked_population):
    population = tracked_population
    server = population.build_server()
    browser = Browser(profile=vanilla_firefox(), server=server,
                      resolver=population.resolver(),
                      catalog=population.catalog)
    _run_flow(population, browser)
    first = _cookie_ids(browser)
    browser.jar.clear()
    browser.tracker_storage.clear()
    _run_flow(population, browser)
    second = _cookie_ids(browser)
    assert first and second
    assert first.isdisjoint(second)


def test_pii_id_survives_clearing(tracked_population):
    population = tracked_population
    server = population.build_server()
    browser = Browser(profile=vanilla_firefox(), server=server,
                      resolver=population.resolver(),
                      catalog=population.catalog)
    _run_flow(population, browser)
    first = _pii_ids(population, browser.log)
    browser.jar.clear()
    browser.tracker_storage.clear()
    browser.log.entries.clear()
    _run_flow(population, browser)
    second = _pii_ids(population, browser.log)
    assert first and first == second


def test_pii_id_identical_across_browsers(tracked_population):
    population = tracked_population
    firefox_run = StudyCrawler(population,
                               profile=vanilla_firefox()).crawl()
    chrome_run = StudyCrawler(population, profile=chrome()).crawl()
    assert _pii_ids(population, firefox_run.log) == \
        _pii_ids(population, chrome_run.log)


def test_pii_id_differs_between_users(tracked_population):
    from repro.core.persona import Persona
    population = tracked_population
    run_a = StudyCrawler(population).crawl()
    other = Population(sites=population.sites,
                       catalog=population.catalog,
                       persona=Persona(email="someone.else@pmail.example"),
                       zone=population.zone)
    run_b = StudyCrawler(other).crawl()
    ids_a = _pii_ids(population, run_a.log)
    ids_b = _pii_ids(other, run_b.log)
    assert ids_a and ids_b and ids_a.isdisjoint(ids_b)
