"""CLI surface: parsing, scan/tokens subcommands (fast paths only)."""

import pytest

from repro import hashes
from repro.cli import build_parser, main
from repro.core.persona import DEFAULT_PERSONA


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_tokens_subcommand(capsys):
    assert main(["tokens"]) == 0
    output = capsys.readouterr().out
    assert DEFAULT_PERSONA.email in output
    assert "candidate tokens" in output


def test_scan_detects_leaky_url(capsys):
    token = hashes.apply_chain(DEFAULT_PERSONA.email, ["sha256"])
    exit_code = main(["scan", "https://t.net/p?uid=%s" % token])
    assert exit_code == 1
    output = capsys.readouterr().out
    assert "LEAK" in output and "sha256" in output


def test_scan_clean_url(capsys):
    assert main(["scan", "https://t.net/p?uid=nothing"]) == 0
    assert "clean" in capsys.readouterr().out


def test_scan_mixed_urls_exit_code(capsys):
    token = hashes.apply_chain(DEFAULT_PERSONA.email, ["md5"])
    exit_code = main(["scan", "https://a.net/?x=%s" % token,
                      "https://b.net/?x=clean"])
    assert exit_code == 1
    output = capsys.readouterr().out
    assert "LEAK" in output and "clean" in output


def test_crowd_subcommand(capsys):
    assert main(["crowd", "--seed", "3", "--sites", "10",
                 "--contributors", "2"]) == 0
    output = capsys.readouterr().out
    assert "single vantage" in output


def test_selection_subcommand(capsys):
    assert main(["selection"]) == 0
    output = capsys.readouterr().out
    assert "404 sites" in output
    assert "307" in output and "130" in output


def test_unknown_subcommand_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])
