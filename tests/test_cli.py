"""CLI surface: parsing, scan/tokens subcommands (fast paths only)."""

import pytest

from repro import hashes
from repro.cli import build_parser, main
from repro.core.persona import DEFAULT_PERSONA


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_tokens_subcommand_redacts_email(capsys):
    from repro.reporting import redact_email
    assert main(["tokens"]) == 0
    output = capsys.readouterr().out
    assert DEFAULT_PERSONA.email not in output
    assert redact_email(DEFAULT_PERSONA.email) in output
    assert "candidate tokens" in output


def test_tokens_show_pii_escape_hatch(capsys):
    assert main(["tokens", "--show-pii"]) == 0
    assert DEFAULT_PERSONA.email in capsys.readouterr().out


def test_scan_detects_leaky_url(capsys):
    token = hashes.apply_chain(DEFAULT_PERSONA.email, ["sha256"])
    exit_code = main(["scan", "https://t.net/p?uid=%s" % token])
    assert exit_code == 1
    output = capsys.readouterr().out
    assert "LEAK" in output and "sha256" in output


def test_scan_redacts_leaked_tokens_by_default(capsys):
    url = "https://t.net/p?uid=%s" % DEFAULT_PERSONA.email
    assert main(["scan", url]) == 1
    output = capsys.readouterr().out
    assert DEFAULT_PERSONA.email not in output
    assert "https://t.net/p?uid=" in output  # non-PII part intact


def test_scan_show_pii_escape_hatch(capsys):
    url = "https://t.net/p?uid=%s" % DEFAULT_PERSONA.email
    assert main(["scan", "--show-pii", url]) == 1
    assert DEFAULT_PERSONA.email in capsys.readouterr().out


def test_scan_clean_url(capsys):
    assert main(["scan", "https://t.net/p?uid=nothing"]) == 0
    assert "clean" in capsys.readouterr().out


def test_scan_mixed_urls_exit_code(capsys):
    token = hashes.apply_chain(DEFAULT_PERSONA.email, ["md5"])
    exit_code = main(["scan", "https://a.net/?x=%s" % token,
                      "https://b.net/?x=clean"])
    assert exit_code == 1
    output = capsys.readouterr().out
    assert "LEAK" in output and "clean" in output


def test_crowd_subcommand(capsys):
    assert main(["crowd", "--seed", "3", "--sites", "10",
                 "--contributors", "2"]) == 0
    output = capsys.readouterr().out
    assert "single vantage" in output


def test_selection_subcommand(capsys):
    assert main(["selection"]) == 0
    output = capsys.readouterr().out
    assert "404 sites" in output
    assert "307" in output and "130" in output


def test_unknown_subcommand_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_study_accepts_fault_and_resume_flags():
    args = build_parser().parse_args(
        ["study", "--faults", "0.2", "--seed", "7",
         "--checkpoint", "crawl.ckpt", "--resume", "old.ckpt"])
    assert args.faults == 0.2
    assert args.seed == 7
    assert args.checkpoint == "crawl.ckpt"
    assert args.resume == "old.ckpt"


def test_fault_flags_default_off():
    for argv in (["study"], ["report"], ["blocklists"]):
        args = build_parser().parse_args(argv)
        assert args.faults is None
        assert args.seed == 0


def test_report_and_blocklists_accept_fault_flags():
    args = build_parser().parse_args(
        ["report", "--faults", "0.1", "--resume", "x.ckpt"])
    assert args.faults == 0.1 and args.resume == "x.ckpt"
    args = build_parser().parse_args(["blocklists", "--faults", "0.1"])
    assert args.faults == 0.1


def test_fault_plan_built_from_args():
    from repro.cli import _fault_plan
    args = build_parser().parse_args(["study", "--faults", "0.3",
                                      "--seed", "9"])
    plan = _fault_plan(args)
    assert plan is not None
    assert plan.seed == 9 and plan.transient_rate == 0.3
    assert _fault_plan(build_parser().parse_args(["study"])) is None


def test_study_parser_accepts_trace_flag():
    args = build_parser().parse_args(
        ["study", "--workers", "4", "--trace", "out.jsonl"])
    assert args.trace == "out.jsonl"
    assert build_parser().parse_args(["study"]).trace is None
    assert build_parser().parse_args(
        ["report", "--trace", "t.jsonl"]).trace == "t.jsonl"


def test_study_parser_accepts_progress_flags():
    args = build_parser().parse_args(
        ["study", "--progress", "--progress-log", "p.jsonl"])
    assert args.progress is True
    assert args.progress_log == "p.jsonl"
    plain = build_parser().parse_args(["study"])
    assert plain.progress is False and plain.progress_log is None
    assert build_parser().parse_args(
        ["report", "--progress-log", "q.jsonl"]).progress_log == "q.jsonl"


def test_study_for_args_wires_progress_sink(tmp_path):
    from repro.cli import _study_for_args
    from repro.core import StudyConfig
    from repro.obs import ProgressAggregator

    path = str(tmp_path / "p.jsonl")
    args = build_parser().parse_args(
        ["study", "--progress", "--progress-log", path])
    study = _study_for_args(args, StudyConfig())
    sink = study.config.progress
    assert isinstance(sink, ProgressAggregator)
    assert sink.jsonl_path == path
    sink.close()

    plain = _study_for_args(build_parser().parse_args(["study"]),
                            StudyConfig())
    assert plain.config.progress is None


def test_study_for_args_wires_workers_shards_and_trace():
    from repro.cli import _study_for_args
    from repro.core import StudyConfig
    from repro.obs import Recorder

    args = build_parser().parse_args(
        ["study", "--workers", "2", "--shards", "6", "--trace", "t.jsonl"])
    study = _study_for_args(args, StudyConfig())
    assert study.config.workers == 2
    assert study.config.num_shards == 6
    assert isinstance(study.config.recorder, Recorder)

    plain = _study_for_args(build_parser().parse_args(["study"]),
                            StudyConfig())
    assert plain.config.workers == 1
    assert plain.config.recorder is None


def test_write_trace_helper_writes_jsonl(tmp_path, capsys):
    from repro.cli import _write_trace
    from repro.core import Study, StudyConfig
    from repro.obs import read_trace

    path = str(tmp_path / "t.jsonl")
    config = StudyConfig().with_observability()
    study = Study(object(), config=config)
    with config.recorder.span("crawl"):
        pass

    class _Args:
        trace = path

    _write_trace(_Args(), study)
    records = read_trace(path)
    assert [span["name"] for span in records["span"]] == ["crawl"]
    assert "repro-trace summarize" in capsys.readouterr().err


def test_write_trace_helper_noop_without_flag(tmp_path, capsys):
    from repro.cli import _write_trace
    from repro.core import Study

    class _Args:
        trace = None

    _write_trace(_Args(), Study(object()))
    assert capsys.readouterr().err == ""


def test_study_parser_accepts_supervision_flags():
    args = build_parser().parse_args(
        ["study", "--workers", "2", "--chaos", "kill:0",
         "--chaos", "hang:2:1", "--watchdog-deadline", "15",
         "--max-shard-retries", "3", "--drain-timeout", "2.5"])
    assert args.chaos == ["kill:0", "hang:2:1"]
    assert args.watchdog_deadline == 15.0
    assert args.max_shard_retries == 3
    assert args.drain_timeout == 2.5
    plain = build_parser().parse_args(["study"])
    assert plain.chaos is None and plain.watchdog_deadline is None
    report = build_parser().parse_args(
        ["report", "--workers", "2", "--chaos", "kill:1"])
    assert report.chaos == ["kill:1"]


def test_supervision_args_wire_chaos_plan_and_config():
    from repro.cli import _apply_supervision_args
    from repro.core import StudyConfig
    from repro.crawler import ChaosPlan, SupervisorConfig

    args = build_parser().parse_args(
        ["study", "--workers", "2", "--chaos", "kill:0",
         "--watchdog-deadline", "15", "--max-shard-retries", "3"])
    config = _apply_supervision_args(args, StudyConfig(workers=2))
    assert isinstance(config.chaos, ChaosPlan)
    assert config.chaos.faults[0].kind == "kill"
    assert isinstance(config.supervision, SupervisorConfig)
    assert config.supervision.heartbeat_deadline == 15.0
    assert config.supervision.max_retries == 3

    plain = _apply_supervision_args(
        build_parser().parse_args(["study"]), StudyConfig())
    assert plain.chaos is None and plain.supervision is None


def test_chaos_flag_requires_multiple_workers():
    from repro.cli import _apply_supervision_args
    from repro.core import StudyConfig
    args = build_parser().parse_args(["study", "--chaos", "kill:0"])
    with pytest.raises(SystemExit) as excinfo:
        _apply_supervision_args(args, StudyConfig(workers=1))
    assert "--workers >= 2" in str(excinfo.value)


def test_bad_chaos_spec_errors_echo_grammar():
    from repro.cli import _apply_supervision_args
    from repro.core import StudyConfig
    args = build_parser().parse_args(
        ["study", "--workers", "2", "--chaos", "explode:1"])
    with pytest.raises(SystemExit) as excinfo:
        _apply_supervision_args(args, StudyConfig(workers=2))
    message = str(excinfo.value)
    assert "explode" in message and "KIND:SHARD" in message


def test_require_complete_exit_codes(capsys):
    from repro.cli import _require_complete
    from repro.core.pipeline import CrawlOutcome
    from repro.crawler import SupervisionOutcome

    args = build_parser().parse_args(
        ["study", "--workers", "2", "--checkpoint", "ckpt-dir"])

    _require_complete(args, CrawlOutcome(dataset=None))  # complete: no-op

    interrupted = CrawlOutcome(
        dataset=None, complete=False, incomplete_shards=(2, 3),
        supervision=SupervisionOutcome(unfinished=[2, 3],
                                       interrupted=True))
    with pytest.raises(SystemExit) as excinfo:
        _require_complete(args, interrupted)
    assert excinfo.value.code == 130
    err = capsys.readouterr().err
    assert "--resume ckpt-dir" in err     # the exact resume recipe

    quarantined = SupervisionOutcome(interrupted=False)
    quarantined.quarantined[1] = object()
    partial = CrawlOutcome(dataset=None, complete=False,
                           incomplete_shards=(1,),
                           supervision=quarantined)
    with pytest.raises(SystemExit) as excinfo:
        _require_complete(args, partial)
    assert excinfo.value.code == 1
    assert "quarantined" in capsys.readouterr().err


def test_serve_subcommand_is_wired():
    args = build_parser().parse_args(
        ["serve", "--port", "0", "--runners", "2", "--queue-size", "3"])
    from repro.service.cli import serve
    assert args.func is serve
    assert (args.port, args.runners, args.queue_size) == (0, 2, 3)


def test_repro_serve_parser_defaults():
    from repro.service.cli import build_parser as build_serve_parser
    args = build_serve_parser().parse_args([])
    assert args.host == "127.0.0.1"
    assert args.port == 8642
    assert args.runners == 1


def test_repro_serve_rejects_bad_config():
    from repro.service.cli import build_parser as build_serve_parser, serve
    args = build_serve_parser().parse_args(["--queue-size", "0"])
    with pytest.raises(SystemExit):
        serve(args)


def test_study_parser_accepts_resources_flag():
    args = build_parser().parse_args(["study", "--progress", "--resources"])
    assert args.resources is True
    assert build_parser().parse_args(["study"]).resources is False


def test_resources_flag_requires_a_progress_sink():
    from repro.cli import _study_for_args
    from repro.core import StudyConfig

    args = build_parser().parse_args(["study", "--resources"])
    with pytest.raises(SystemExit) as excinfo:
        _study_for_args(args, StudyConfig())
    assert "--progress" in str(excinfo.value)


def test_resources_flag_wires_the_config(tmp_path):
    from repro.cli import _study_for_args
    from repro.core import StudyConfig

    args = build_parser().parse_args(
        ["study", "--resources", "--progress-log",
         str(tmp_path / "p.jsonl")])
    study = _study_for_args(args, StudyConfig())
    assert study.config.resources is True
    study.config.progress.close()

    plain = _study_for_args(
        build_parser().parse_args(["study", "--progress"]), StudyConfig())
    assert plain.config.resources is False
    plain.config.progress.close()


def test_metrics_command_scrapes_a_live_service(tmp_path, capsys):
    from repro.service import ServiceConfig, StudyService

    service = StudyService(ServiceConfig(port=0, runners=0, queue_size=2,
                                         jobs_dir=str(tmp_path / "jobs")))
    service.start()
    service.start_in_thread()
    try:
        url = "http://127.0.0.1:%d" % service.port
        assert main(["metrics", "--url", url]) == 0
        scrape = capsys.readouterr().out
        assert "# TYPE repro_service_queue_depth gauge" in scrape
        assert "repro_service_accepting 1" in scrape

        assert main(["metrics", "--url", url, "--live",
                     "--interval", "0.05", "--count", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert all("queue 0/2" in line and "jobs" in line
                   for line in lines)
    finally:
        service.close()


def test_metrics_command_reports_unreachable_service():
    with pytest.raises(SystemExit) as excinfo:
        main(["metrics", "--url", "http://127.0.0.1:9"])
    assert "cannot scrape" in str(excinfo.value)
