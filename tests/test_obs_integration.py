"""Tracing end to end: fingerprints never move, merged traces never vary.

The two contracts under test:

* **Fingerprint invariance** — enabling observability must not change a
  single byte of :meth:`CrawlDataset.fingerprint`, for any seed, worker
  count, or fault plan.
* **Trace invariance** — the merged recorder of a parallel crawl is
  identical (snapshot-equal) at every worker count, because per-shard
  recorders merge in shard-layout order, never in completion order.
"""

import json

import pytest

from repro.core import CrawlOutcome, Study, StudyConfig
from repro.crawler import GeneratedPopulationSpec, ParallelCrawler
from repro.netsim.faults import FaultPlan
from repro.obs import Recorder
from repro.websim.generator import GeneratorConfig

_CONFIG = GeneratorConfig(n_sites=10, n_trackers=4, leak_probability=0.6,
                          confirmation_probability=0.4)
_NUM_SHARDS = 5


def _study(seed, workers, trace, fault_seed=None):
    plan = (FaultPlan(seed=fault_seed, transient_rate=0.25)
            if fault_seed is not None else None)
    config = StudyConfig(workers=workers, num_shards=_NUM_SHARDS,
                         fault_plan=plan)
    if trace:
        config = config.with_observability()
    spec = GeneratedPopulationSpec(seed=seed, config=_CONFIG)
    return Study(spec.build(), config=config, population_spec=spec)


# -- fingerprint invariance ----------------------------------------------


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_tracing_never_changes_the_fingerprint(seed, workers):
    plain = _study(seed, workers, trace=False).crawl()
    traced = _study(seed, workers, trace=True).crawl()
    assert isinstance(traced, CrawlOutcome)
    assert traced.dataset.fingerprint() == plain.dataset.fingerprint()
    assert traced.recorder is not None and plain.recorder is None


@pytest.mark.parametrize("workers", [1, 4])
def test_tracing_never_changes_the_fingerprint_under_faults(workers):
    plain = _study(0, workers, trace=False, fault_seed=7).crawl()
    traced = _study(0, workers, trace=True, fault_seed=7).crawl()
    assert traced.dataset.fingerprint() == plain.dataset.fingerprint()
    assert traced.recorder.counters  # faults or not, the trace is live


def test_tracing_never_changes_the_analysis():
    plain = _study(0, 1, trace=False).run()
    traced = _study(0, 1, trace=True).run()
    assert traced.events == plain.events
    assert traced.leaking_request_count == plain.leaking_request_count
    assert traced.analysis.receivers() == plain.analysis.receivers()


# -- trace invariance across worker counts -------------------------------


def test_merged_trace_identical_across_worker_counts():
    snapshots = {}
    for workers in (1, 2, 4):
        recorder = Recorder()
        ParallelCrawler(GeneratedPopulationSpec(seed=0, config=_CONFIG),
                        workers=workers, num_shards=_NUM_SHARDS,
                        recorder=recorder).run()
        snapshots[workers] = recorder.snapshot()
    assert snapshots[1] == snapshots[2] == snapshots[4]
    # ... and it is JSON-able, i.e. exportable as-is.
    json.dumps(snapshots[4])


def test_merged_trace_identical_across_worker_counts_with_faults():
    plan = FaultPlan(seed=3, transient_rate=0.25)
    snapshots = {}
    for workers in (2, 4):
        recorder = Recorder()
        ParallelCrawler(GeneratedPopulationSpec(seed=1, config=_CONFIG),
                        workers=workers, num_shards=_NUM_SHARDS,
                        fault_plan=plan.fresh_copy(),
                        recorder=recorder).run()
        snapshots[workers] = recorder.snapshot()
    assert snapshots[2] == snapshots[4]


# -- span-tree well-formedness -------------------------------------------


def test_parallel_trace_tree_shape():
    study = _study(0, 4, trace=True)
    outcome = study.crawl()
    recorder = outcome.recorder
    assert recorder.open_span_count == 0
    (crawl,) = recorder.roots
    assert crawl.name == "crawl" and crawl.end is not None
    shards = crawl.children
    assert [shard.name for shard in shards] == ["shard"] * _NUM_SHARDS
    assert [shard.attrs["index"] for shard in shards] == \
        list(range(_NUM_SHARDS))
    site_count = 0
    for shard in shards:
        assert shard.end is not None and shard.end >= shard.start
        assert len(shard.children) == shard.attrs["sites"]
        for site in shard.children:
            assert site.name == "site"
            site_count += 1
            assert site.end is not None and site.end >= site.start
            for request in site.children:
                assert request.name == "request"
                # Request point-spans land inside their site interval.
                assert site.start <= request.start <= site.end
    assert site_count == _CONFIG.n_sites


def test_serial_trace_tree_shape():
    study = _study(0, 1, trace=True)
    study.crawl()
    recorder = study.config.recorder
    assert recorder.open_span_count == 0
    (crawl,) = recorder.roots
    assert crawl.name == "crawl"
    sites = crawl.children
    assert [span.name for span in sites] == ["site"] * _CONFIG.n_sites
    assert all(span.end is not None for span, _ in crawl.walk())


def test_full_run_records_stage_spans():
    study = _study(0, 1, trace=True)
    study.run()
    recorder = study.config.recorder
    (root,) = recorder.roots
    assert root.name == "study"
    stage_names = [child.name for child in root.children]
    assert stage_names == ["crawl", "tokens", "detect", "analysis",
                           "heuristics", "policy"]
    assert recorder.counters["crawl.sites"].value == _CONFIG.n_sites
    assert "detector.entries_scanned" in recorder.counters
    assert "tokens.candidates" in recorder.gauges


# -- checkpoint/resume ---------------------------------------------------


def test_serial_resume_with_trace_keeps_fingerprint_and_spans(tmp_path):
    baseline = _study(1, 1, trace=False).crawl().dataset.fingerprint()

    # Crawl half, checkpoint, and resume through the traced study API.
    study = _study(1, 1, trace=True)
    session = study.crawler().start()
    for _ in range(4):
        session.step()
    path = str(tmp_path / "ckpt.pkl")
    session.save(path)

    resumed = _study(1, 1, trace=True)
    outcome = resumed.crawl(resume=path)
    assert outcome.dataset.fingerprint() == baseline
    names = [span.name for span, _ in resumed.config.recorder.all_spans()]
    assert names.count("site") == _CONFIG.n_sites
