"""RIPEMD family: published vectors, OpenSSL cross-check, structure."""

import hashlib

import pytest

from repro.hashes.ripemd import (
    ripemd128_digest,
    ripemd128_hexdigest,
    ripemd160_digest,
    ripemd160_hexdigest,
    ripemd256_digest,
    ripemd256_hexdigest,
    ripemd320_digest,
    ripemd320_hexdigest,
)

RIPEMD160_VECTORS = [
    (b"", "9c1185a5c5e9fc54612808977ee8f548b2258d31"),
    (b"a", "0bdc9d2d256b3ee9daae347be6f4dc835a467ffe"),
    (b"abc", "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc"),
    (b"message digest", "5d0689ef49d2fae572b881b123a85ffa21595f36"),
    (b"abcdefghijklmnopqrstuvwxyz",
     "f71c27109c692c1b56bbdceb5b9d2865b3708dbc"),
]

RIPEMD128_VECTORS = [
    (b"", "cdf26213a150dc3ecb610f18f6b38b46"),
    (b"abc", "c14a12199c66e4ba84636b0f69144c77"),
]


@pytest.mark.parametrize("message,expected", RIPEMD160_VECTORS)
def test_ripemd160_vectors(message, expected):
    assert ripemd160_hexdigest(message) == expected


@pytest.mark.parametrize("message,expected", RIPEMD128_VECTORS)
def test_ripemd128_vectors(message, expected):
    assert ripemd128_hexdigest(message) == expected


def _openssl_ripemd160_available():
    try:
        hashlib.new("ripemd160")
        return True
    except ValueError:
        return False


@pytest.mark.skipif(not _openssl_ripemd160_available(),
                    reason="OpenSSL legacy provider without ripemd160")
@pytest.mark.parametrize("message", [
    b"", b"x", b"foo@mydom.com", b"a" * 55, b"b" * 64, b"c" * 200,
])
def test_ripemd160_matches_openssl(message):
    reference = hashlib.new("ripemd160")
    reference.update(message)
    assert ripemd160_hexdigest(message) == reference.hexdigest()


def test_digest_lengths():
    assert len(ripemd128_digest(b"x")) == 16
    assert len(ripemd160_digest(b"x")) == 20
    assert len(ripemd256_digest(b"x")) == 32
    assert len(ripemd320_digest(b"x")) == 40


@pytest.mark.parametrize("func", [
    ripemd128_hexdigest, ripemd160_hexdigest,
    ripemd256_hexdigest, ripemd320_hexdigest,
])
def test_deterministic_and_distinct(func):
    assert func(b"alpha") == func(b"alpha")
    assert func(b"alpha") != func(b"beta")


def test_double_width_variants_not_truncations():
    # RIPEMD-256 is not RIPEMD-128 zero-extended (and likewise 320/160):
    # the parallel lines exchange chaining words, producing unrelated
    # digests.
    assert ripemd256_hexdigest(b"abc")[:32] != ripemd128_hexdigest(b"abc")
    assert ripemd320_hexdigest(b"abc")[:40] != ripemd160_hexdigest(b"abc")


def test_block_boundaries():
    for length in (55, 56, 57, 63, 64, 65):
        for func in (ripemd128_digest, ripemd160_digest,
                     ripemd256_digest, ripemd320_digest):
            assert func(b"q" * length)
