"""Determinism rules: positive and negative fixtures per rule."""

import textwrap

from repro.statan import analyze_source, default_rules

IN_SCOPE = "repro.crawler.fixture"
OUT_OF_SCOPE = "repro.reporting.fixture"


def _rules_fired(source, module=IN_SCOPE):
    findings = analyze_source(textwrap.dedent(source), default_rules(),
                              module=module)
    return [finding.rule for finding in findings]


# -- DET101: wall clock ------------------------------------------------------

def test_time_time_flagged():
    assert "DET101" in _rules_fired("""
        import time
        def stamp():
            return time.time()
    """)


def test_time_alias_flagged():
    assert "DET101" in _rules_fired("""
        import time as clock
        t = clock.monotonic()
    """)


def test_naive_datetime_now_flagged():
    assert "DET101" in _rules_fired("""
        from datetime import datetime
        t = datetime.now()
    """)


def test_datetime_utcnow_flagged():
    assert "DET101" in _rules_fired("""
        import datetime
        t = datetime.datetime.utcnow()
    """)


def test_tz_aware_now_not_flagged():
    assert _rules_fired("""
        import datetime
        t = datetime.datetime.now(tz=datetime.timezone.utc)
    """) == []


def test_simclock_now_not_flagged():
    # .now() on anything that is not the datetime classes is fine —
    # that is exactly the simulated-clock idiom the rule points to.
    assert _rules_fired("""
        def stamp(clock):
            return clock.now()
    """) == []


def test_wall_clock_out_of_scope_not_flagged():
    assert _rules_fired("""
        import time
        t = time.time()
    """, module=OUT_OF_SCOPE) == []


# -- DET102: unseeded random -------------------------------------------------

def test_module_level_random_flagged():
    fired = _rules_fired("""
        import random
        x = random.random()
        y = random.choice([1, 2])
    """)
    assert fired.count("DET102") == 2


def test_from_import_random_flagged():
    assert "DET102" in _rules_fired("""
        from random import shuffle
        shuffle([1, 2, 3])
    """)


def test_seeded_random_instance_allowed():
    assert _rules_fired("""
        import random
        rng = random.Random(42)
        x = rng.random()
        y = rng.choice([1, 2])
    """) == []


# -- DET103: OS entropy ------------------------------------------------------

def test_os_urandom_flagged():
    assert "DET103" in _rules_fired("""
        import os
        salt = os.urandom(16)
    """)


def test_uuid4_and_secrets_flagged():
    fired = _rules_fired("""
        import uuid
        import secrets
        a = uuid.uuid4()
        b = secrets.token_hex(8)
    """)
    assert fired.count("DET103") == 2


def test_system_random_flagged():
    assert "DET103" in _rules_fired("""
        import random
        rng = random.SystemRandom()
    """)


def test_uuid5_allowed():
    # uuid5 is a deterministic hash of (namespace, name).
    assert _rules_fired("""
        import uuid
        a = uuid.uuid5(uuid.NAMESPACE_DNS, "example.org")
    """) == []


# -- DET104: builtin hash() --------------------------------------------------

def test_builtin_hash_flagged():
    assert "DET104" in _rules_fired("""
        def shard_of(domain, n):
            return hash(domain) % n
    """)


def test_hashlib_idiom_allowed():
    assert _rules_fired("""
        import hashlib
        def shard_of(domain, n):
            digest = hashlib.sha256(domain.encode()).hexdigest()
            return int(digest, 16) % n
    """) == []


def test_locally_defined_hash_not_flagged():
    assert _rules_fired("""
        def hash(value):
            return 0
        x = hash("stable")
    """) == []


def test_object_hash_method_not_flagged():
    assert _rules_fired("""
        class Key:
            def __hash__(self):
                return 7
        def use(key):
            return key.__hash__()
    """) == []


def test_builtin_hash_out_of_scope_not_flagged():
    assert _rules_fired("x = hash('anything')\n",
                        module="repro.policy.fixture") == []
