"""Adblock extension in the browser, and the crowdsourced study."""

import pytest

from repro.blocklist import AdblockExtension, RuleSet
from repro.core import CandidateTokenSet, LeakAnalysis, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.crowd import CrowdStudy, make_panel
from repro.websim.generator import GeneratorConfig, generate_population


# -- extension ----------------------------------------------------------------

def test_extension_filter_request_verdicts():
    extension = AdblockExtension(
        rules=RuleSet.from_text("||tracker.net^$third-party"),
        name="test-blocker")
    assert extension.filter_request("https://tracker.net/p", "image",
                                    "www.shop.com") == "test-blocker"
    assert extension.filter_request("https://benign.net/p", "image",
                                    "www.shop.com") is None
    # First-party requests to the same domain are not third-party.
    assert extension.filter_request("https://tracker.net/p", "image",
                                    "www.tracker.net") is None


def test_extension_reduces_leakage_in_crawl(study_spec):
    tokens = CandidateTokenSet(DEFAULT_PERSONA)
    detector = LeakDetector(tokens, catalog=study_spec.catalog,
                            resolver=study_spec.population.resolver())
    sites = [study_spec.population.sites[d]
             for d in study_spec.leaking_domains[:20]]

    baseline = StudyCrawler(study_spec.population).crawl(sites=sites)
    protected = StudyCrawler(
        study_spec.population,
        extension=AdblockExtension.with_default_lists()).crawl(sites=sites)

    baseline_senders = LeakAnalysis(detector.detect(baseline.log)).senders()
    protected_senders = LeakAnalysis(
        detector.detect(protected.log)).senders()
    assert len(protected_senders) < len(baseline_senders)
    # Blocked requests are visible in the capture log.
    assert any(e.blocked_by == "easylist+easyprivacy"
               for e in protected.log)


def test_extension_does_not_block_documents(study_spec):
    # Even a catch-all list must not cancel top-level navigations.
    extension = AdblockExtension(rules=RuleSet.from_text("^"),
                                 name="catch-all")
    site = study_spec.population.sites[study_spec.leaking_domains[0]]
    dataset = StudyCrawler(study_spec.population,
                           extension=extension).crawl(sites=[site])
    assert dataset.flows[site.domain].status in ("success",
                                                 "signin_failed")


# -- crowdsourcing ---------------------------------------------------------------

@pytest.fixture(scope="module")
def crowd_population():
    return generate_population(seed=21, config=GeneratorConfig(
        n_sites=24, n_trackers=8, leak_probability=0.6))


def test_make_panel_shapes(crowd_population):
    domains = list(crowd_population.sites)
    panel = make_panel(domains, n_contributors=3, overlap=0.25)
    assert len(panel) == 3
    shared = int(len(domains) * 0.25)
    for contributor in panel:
        assert set(domains[:shared]) <= set(contributor.site_domains)
    # Private slices partition the remainder.
    privates = [set(c.site_domains) - set(domains[:shared])
                for c in panel]
    assert set().union(*privates) == set(domains[shared:])
    for i in range(len(privates)):
        for j in range(i + 1, len(privates)):
            assert privates[i].isdisjoint(privates[j])


def test_make_panel_validation(crowd_population):
    domains = list(crowd_population.sites)
    with pytest.raises(ValueError):
        make_panel(domains, n_contributors=0)
    with pytest.raises(ValueError):
        make_panel(domains, n_contributors=2, overlap=1.5)


def test_panel_personas_distinct(crowd_population):
    panel = make_panel(list(crowd_population.sites), n_contributors=4)
    emails = {c.persona.email for c in panel}
    assert len(emails) == 4


def test_crowd_merging_expands_cross_site_view(crowd_population):
    panel = make_panel(list(crowd_population.sites), n_contributors=3,
                       overlap=0.2)
    single = CrowdStudy(crowd_population, panel[:1]).run()
    merged = CrowdStudy(crowd_population, panel).run()
    assert len(merged.analysis.senders()) >= len(single.analysis.senders())
    assert len(merged.persistence_report.cross_site_receivers) > \
        len(single.persistence_report.cross_site_receivers)


def test_contributor_reports_isolated(crowd_population):
    """A contributor's report never contains another persona's tokens."""
    panel = make_panel(list(crowd_population.sites), n_contributors=2,
                       overlap=0.5)
    result = CrowdStudy(crowd_population, panel).run()
    for report, contributor in zip(result.reports, panel):
        others = [c.persona.email for c in panel
                  if c.persona.email != contributor.persona.email]
        for event in report.events:
            for other_email in others:
                assert other_email not in event.token


def test_receivers_confirmed_by_threshold(crowd_population):
    panel = make_panel(list(crowd_population.sites), n_contributors=3,
                       overlap=1.0)  # everyone crawls everything
    result = CrowdStudy(crowd_population, panel).run()
    all_receivers = sorted(result.analysis.receivers())
    assert result.receivers_confirmed_by(3) == all_receivers
    assert result.receivers_confirmed_by(1) == all_receivers
