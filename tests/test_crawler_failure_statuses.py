"""Dedicated coverage for every FlowResult failure status (§3.2)."""


from repro.browser import Browser, brave, vanilla_firefox
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import (
    AuthFlowRunner,
    FAILURE_PERMANENT,
    FAILURE_TRANSIENT,
    FlowResult,
    STATUS_BLOCKED,
    STATUS_BOT_BLOCKED,
    STATUS_CAPTCHA_FAILED,
    STATUS_CONFIRMATION_FAILED,
    STATUS_NO_AUTH,
    STATUS_SIGNIN_FAILED,
    STATUS_UNREACHABLE,
    StudyCrawler,
)
from repro.mailsim import Mailbox
from repro.netsim import HttpResponse
from repro.websim import (
    BLOCK_PHONE,
    SiteAuthConfig,
    Website,
    build_default_catalog,
)
from repro.websim.population import Population
from repro.websim.server import WebServer


def _population(**auth_kwargs):
    site = Website(domain="site.example",
                   auth=SiteAuthConfig(**auth_kwargs))
    return Population(sites={site.domain: site},
                      catalog=build_default_catalog())


def _crawl_one(population, **crawler_kwargs):
    dataset = StudyCrawler(population, **crawler_kwargs).crawl()
    return dataset.flows["site.example"]


def test_unreachable_is_transient():
    flow = _crawl_one(_population(unreachable=True))
    assert flow.status == STATUS_UNREACHABLE
    assert flow.failure_class == FAILURE_TRANSIENT
    assert not flow.succeeded


def test_no_auth_is_permanent():
    flow = _crawl_one(_population(has_auth=False))
    assert flow.status == STATUS_NO_AUTH
    assert flow.failure_class == FAILURE_PERMANENT


def test_signup_blocked_records_reason():
    flow = _crawl_one(_population(signup_block=BLOCK_PHONE))
    assert flow.status == STATUS_BLOCKED
    assert flow.block_reason == BLOCK_PHONE
    assert flow.failure_class == FAILURE_PERMANENT


def test_captcha_failed_under_brave():
    population = _population(captcha_blocks_brave=True)
    flow = _crawl_one(population, profile=brave(population.catalog))
    assert flow.status == STATUS_CAPTCHA_FAILED
    assert flow.failure_class == FAILURE_PERMANENT


def test_bot_blocked_in_automated_mode():
    flow = _crawl_one(_population(bot_detection=True), automated=True)
    assert flow.status == STATUS_BOT_BLOCKED
    assert flow.failure_class == FAILURE_PERMANENT


def test_confirmation_failed_in_automated_mode():
    flow = _crawl_one(_population(requires_email_confirmation=True),
                      automated=True)
    assert flow.status == STATUS_CONFIRMATION_FAILED
    assert flow.failure_class == FAILURE_PERMANENT


class _BrokenSigninServer(WebServer):
    """Origin whose sign-in endpoint rejects every credential."""

    def _handle_signin_submit(self, site, request):
        return HttpResponse(status=401, body=b"bad credentials")


def test_signin_failed_when_credentials_rejected():
    population = _population()
    site = population.sites["site.example"]
    server = _BrokenSigninServer(sites=population.sites,
                                 catalog=population.catalog)
    browser = Browser(profile=vanilla_firefox(), server=server,
                      resolver=population.resolver(),
                      catalog=population.catalog)
    runner = AuthFlowRunner(browser, DEFAULT_PERSONA,
                            Mailbox(DEFAULT_PERSONA.email))
    flow = runner.run(site)
    assert flow.status == STATUS_SIGNIN_FAILED
    assert flow.failure_class == FAILURE_PERMANENT


def test_flow_result_defaults():
    flow = FlowResult("site.example", STATUS_UNREACHABLE)
    assert flow.attempts == 1
    assert flow.failure_kind is None
    assert FlowResult("site.example", "unheard_of").failure_class == \
        FAILURE_PERMANENT
