#!/usr/bin/env python3
"""Audit a site definition you wrote yourself.

The downstream use case: you model *your own* site's third-party embeds
(which snippets it loads, what they read from the sign-up form), run the
paper's methodology against it, and get a leak report plus the protections
that would catch each leak — before any real user types anything.

Run:  python examples/audit_custom_site.py
"""

from repro.blocklist import BlocklistEvaluator, default_rule_sets
from repro.core import CandidateTokenSet, LeakAnalysis, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.websim import (
    LeakBehavior,
    TrackerEmbed,
    Website,
    build_default_catalog,
)
from repro.websim.population import Population


def my_site(catalog) -> Website:
    """Your storefront, as currently deployed."""
    return Website(
        domain="my-storefront.example",
        embeds=[
            # Facebook pixel with advanced matching enabled.
            TrackerEmbed(catalog.get("facebook.com"),
                         LeakBehavior(("uri", "payload"), (("sha256",),))),
            # Klaviyo onsite snippet identifying subscribers.
            TrackerEmbed(catalog.get("klaviyo.com"),
                         LeakBehavior(("uri",), (("base64",),))),
            # Plain analytics, no identify call: embedded but not leaking.
            TrackerEmbed(catalog.get("google-analytics.com")),
        ])


def main() -> None:
    catalog = build_default_catalog()
    site = my_site(catalog)
    population = Population(sites={site.domain: site}, catalog=catalog)

    dataset = StudyCrawler(population).crawl()
    detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                            catalog=catalog,
                            resolver=population.resolver())
    events = detector.detect(dataset.log)
    analysis = LeakAnalysis(events)

    print("Audit report for %s" % site.domain)
    print("=" * 60)
    if not events:
        print("No PII leakage detected.")
        return
    for rel in analysis.relationships():
        print("\nLEAK -> %s (%s)" % (rel.receiver,
                                     catalog.get(rel.receiver).organisation))
        print("  channels:  %s" % ", ".join(sorted(rel.channels)))
        print("  encodings: %s" % ", ".join(sorted(rel.encodings)))
        print("  PII types: %s" % ", ".join(sorted(rel.pii_types)))
        print("  params:    %s" % ", ".join(sorted(rel.parameters)))
        print("  persists on subpages: %s"
              % ("YES" if rel.seen_on_subpage else "no"))

    # Which of the user's leaks would common protections have caught?
    evaluator = BlocklistEvaluator(detector, default_rule_sets())
    report = evaluator.evaluate(dataset.log)
    print("\nWould filter lists have stopped this?")
    for list_name in ("easylist", "easyprivacy", "combined"):
        cell = report.receivers[list_name]["total"]
        print("  %-12s blocks %d of %d leak receivers"
              % (list_name, cell.blocked, cell.total))


if __name__ == "__main__":
    main()
