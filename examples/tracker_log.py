#!/usr/bin/env python3
"""What a tracking provider actually knows: the server-side log.

Runs the calibrated study, then prints the reconstructed per-user logs of
the top persistent-tracking providers — the concrete artifact behind the
paper's abstract claim that leaked PII lets a provider "match the user's
browsing history across sites".

Run:  python examples/tracker_log.py   (about 25 seconds)
"""

from repro import Study
from repro.tracking import reconstruct_timelines, render_timeline


def main() -> None:
    print("Crawling the calibrated population...")
    result = Study.calibrated().run()

    for provider in ("criteo.com", "facebook.com", "pinterest.com"):
        timelines = reconstruct_timelines(result.events,
                                          receiver=provider,
                                          min_entries=4)
        if not timelines:
            continue
        best = timelines[0]
        print()
        print(render_timeline(best, limit=8))
        print("  => %d sites in one profile, %.0f simulated seconds of "
              "history, zero cookies involved."
              % (len(best.sites), best.span))


if __name__ == "__main__":
    main()
