#!/usr/bin/env python3
"""§7.1: how much PII leakage does each browser actually stop?

Re-crawls the 130 leaking senders of the calibrated study under Chrome,
Opera, Safari (ITP), Firefox (ETP) and Brave (Shields), and prints the
per-browser reduction — reproducing the paper's finding that cookie-level
defences are irrelevant to PII exfiltration and only Brave's request
blocking helps (at the price of one broken CAPTCHA sign-up).

Run:  python examples/browser_showdown.py        (takes ~1 minute)
"""

from repro.protection import BrowserCountermeasureEvaluator
from repro.websim.shopping import build_study_population


def main() -> None:
    spec = build_study_population()
    evaluator = BrowserCountermeasureEvaluator(spec.population,
                                               spec.leaking_domains)
    print("Re-crawling 130 leaking sites under 6 browser configurations "
          "(about a minute)...\n")
    study = evaluator.run()

    print("baseline (Firefox 88, ETP off): %d senders, %d receivers\n"
          % (study.baseline.senders, study.baseline.receivers))
    print("%-14s %-22s %-24s %s"
          % ("browser", "senders (reduction)", "receivers (reduction)",
             "broken sign-ups"))
    for name, result in study.results.items():
        sender_pct, receiver_pct = study.reductions()[name]
        print("%-14s %4d (-%5.1f%%)         %4d (-%5.1f%%)           %s"
              % (name, result.senders, sender_pct, result.receivers,
                 receiver_pct, ", ".join(result.failed_signups) or "-"))
    print()
    print("Receivers that still obtain PII under Brave Shields:")
    for domain in study.remaining_receivers["brave"]:
        print("  - %s" % domain)


if __name__ == "__main__":
    main()
