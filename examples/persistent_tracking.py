#!/usr/bin/env python3
"""Figure 3 / §5: persistent web tracking without third-party cookies.

One persona signs up on three independent shops that all embed the same
tracking provider.  The provider receives the SHA-256 of the email in its
``p0`` parameter on each site — during authentication *and again on every
ordinary subpage* — so its server-side log alone reconstructs the user's
cross-site browsing history.  The script prints that reconstructed
tracker-side view.

Run:  python examples/persistent_tracking.py
"""

from collections import defaultdict

from repro.core import CandidateTokenSet, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.tracking import PersistenceAnalyzer
from repro.websim import (
    LeakBehavior,
    TrackerEmbed,
    Website,
    build_default_catalog,
)
from repro.websim.population import Population

SHOPS = ("alpine-outfitters.example", "basil-pantry.example",
         "cobalt-soles.example")


def main() -> None:
    catalog = build_default_catalog()
    behavior = LeakBehavior(("uri",), (("sha256",),))
    sites = {
        domain: Website(domain=domain, embeds=[
            TrackerEmbed(catalog.get("criteo.com"), behavior)])
        for domain in SHOPS
    }
    population = Population(sites=sites, catalog=catalog)

    dataset = StudyCrawler(population).crawl()
    detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                            catalog=population.catalog,
                            resolver=population.resolver())
    events = detector.detect(dataset.log)

    # The tracker-side server log: what criteo.com can reconstruct.
    print("criteo.com server-side view (trackid parameter 'p0'):\n")
    per_id = defaultdict(list)
    for event in events:
        if event.parameter == "p0":
            per_id[event.token].append(event)
    for token, observations in per_id.items():
        print("identifier p0=%s..." % token[:32])
        for event in observations:
            print("  %-28s stage=%-8s %s"
                  % (event.sender, event.stage, event.url[:72]))
        sites_seen = sorted({event.sender for event in observations})
        print("\n  => one persistent profile across %d sites: %s"
              % (len(sites_seen), ", ".join(sites_seen)))
        print("  => no third-party cookie was needed at any point.\n")

    report = PersistenceAnalyzer(events).report()
    print("Persistence classification: cross-site receivers = %s, "
          "persistent providers = %s"
          % (list(report.cross_site_receivers),
             list(report.persistent_receivers)))


if __name__ == "__main__":
    main()
