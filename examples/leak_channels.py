#!/usr/bin/env python3
"""Figure 1 walkthrough: the four PII leakage methods, one site each.

Builds a minimal universe per channel — a leaky GET form (referer), a
Facebook-pixel style URI exfiltration, an Adobe CNAME-cloaked first-party
cookie, and a JSON payload POST — runs the §3.2 authentication flow, and
prints the detected leak, annotated.

Run:  python examples/leak_channels.py
"""

from repro.core import CandidateTokenSet, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.reporting import render_leak_trace
from repro.websim import (
    LeakBehavior,
    SiteAuthConfig,
    TrackerEmbed,
    Website,
    build_default_catalog,
)
from repro.websim.population import Population


def build_demo_sites():
    catalog = build_default_catalog()
    sites = {
        # (a) via Referer: a newsletter-style GET form exposes the email
        # in the page URL; the embedded criteo snippet sees it in Referer.
        "referer-shop.example": Website(
            domain="referer-shop.example",
            auth=SiteAuthConfig(signup_method="GET",
                                signup_fields=("email", "password")),
            embeds=[TrackerEmbed(catalog.get("criteo.com"))]),
        # (b) via request URI: Facebook advanced matching.
        "uri-shop.example": Website(
            domain="uri-shop.example",
            embeds=[TrackerEmbed(
                catalog.get("facebook.com"),
                LeakBehavior(("uri",), (("sha256",),)))]),
        # (c) via cookie: first-party PII cookie carried to the cloaked
        # Adobe collection subdomain.
        "cookie-shop.example": Website(
            domain="cookie-shop.example",
            embeds=[TrackerEmbed(
                catalog.get("omtrdc.net"),
                LeakBehavior(("cookie",), (("sha256",),)))],
            cname_records={
                "metrics": "cookie-shop.example.sc.omtrdc.net"}),
        # (d) via payload body: JSON identify call.
        "payload-shop.example": Website(
            domain="payload-shop.example",
            embeds=[TrackerEmbed(
                catalog.get("bluecore.com"),
                LeakBehavior(("payload",), (("base64",),),
                             payload_format="json"))]),
    }
    return Population(sites=sites, catalog=catalog)


def main() -> None:
    population = build_demo_sites()
    dataset = StudyCrawler(population).crawl()
    detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                            catalog=population.catalog,
                            resolver=population.resolver())
    events = detector.detect(dataset.log)

    for channel, title in (
            ("referer", "(a) Leakage via Referer header"),
            ("uri", "(b) Leakage via request URI"),
            ("cookie", "(c) Leakage via cookie (CNAME cloaking)"),
            ("payload", "(d) Leakage via payload body")):
        channel_events = [e for e in events if e.channel == channel]
        print(render_leak_trace(channel_events, title, limit=3))
        print()


if __name__ == "__main__":
    main()
