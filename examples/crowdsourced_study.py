#!/usr/bin/env python3
"""Crowdsourced data collection — the paper's §5.2 future work.

A single-vantage study flags a receiver as a cross-site tracker only when
*its own sample* contains two sites feeding it the same identifier; 58 of
the paper's 100 receivers appeared once and stayed unclassifiable.  This
example runs a contributor panel over a synthetic universe: each
contributor crawls their own sample with their own persona, reports only
derived leak events (their PII never leaves their machine), and the
coordinator's merged view recovers cross-site receivers the single-vantage
study missed.

Run:  python examples/crowdsourced_study.py
"""

from repro.crowd import CrowdStudy, make_panel
from repro.websim.generator import GeneratorConfig, generate_population


def main() -> None:
    population = generate_population(seed=21, config=GeneratorConfig(
        n_sites=24, n_trackers=8, leak_probability=0.6))
    panel = make_panel(list(population.sites), n_contributors=3,
                       overlap=0.2)
    for contributor in panel:
        print("%s: persona %s, %d sites"
              % (contributor.name, contributor.persona.email,
                 len(contributor.site_domains)))
    print()

    single = CrowdStudy(population, panel[:1]).run()
    merged = CrowdStudy(population, panel).run()

    single_cross = set(single.persistence_report.cross_site_receivers)
    merged_cross = set(merged.persistence_report.cross_site_receivers)
    print("single vantage : %d receivers seen, %d classifiable as "
          "cross-site trackers"
          % (len(single.analysis.receivers()), len(single_cross)))
    print("3-person panel : %d receivers seen, %d classifiable as "
          "cross-site trackers"
          % (len(merged.analysis.receivers()), len(merged_cross)))
    print()
    recovered = sorted(merged_cross - single_cross)
    print("cross-site trackers recovered by crowdsourcing: %s"
          % (", ".join(recovered) or "(none)"))
    print("receivers independently confirmed by >= 2 contributors: %d"
          % len(merged.receivers_confirmed_by(2)))


if __name__ == "__main__":
    main()
