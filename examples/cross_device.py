#!/usr/bin/env python3
"""§5.1: cross-browser and cross-device tracking via leaked PII.

Simulates the same persona signing in on a laptop (Firefox) and a phone
(Chrome) — two completely independent browser states; no cookie can link
them.  The PII-derived identifiers still match on the tracker side, and
``repro.tracking.match_profiles`` reconstructs the joins each provider can
perform.

Run:  python examples/cross_device.py
"""

from repro.browser import chrome, vanilla_firefox
from repro.core import CandidateTokenSet, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.tracking import linkable_receivers, match_profiles
from repro.websim import (
    LeakBehavior,
    TrackerEmbed,
    Website,
    build_default_catalog,
)
from repro.websim.population import Population


def build_population():
    catalog = build_default_catalog()
    sha256 = LeakBehavior(("uri",), (("sha256",),))
    md5 = LeakBehavior(("uri",), (("md5",),))
    sites = {
        # Visited from the laptop.
        "laptop-store.example": Website(
            domain="laptop-store.example",
            embeds=[TrackerEmbed(catalog.get("facebook.com"), sha256),
                    TrackerEmbed(catalog.get("criteo.com"), md5)]),
        # Visited from the phone.
        "phone-store.example": Website(
            domain="phone-store.example",
            embeds=[TrackerEmbed(catalog.get("facebook.com"), sha256),
                    TrackerEmbed(catalog.get("pinterest.com"), sha256)]),
    }
    return Population(sites=sites, catalog=catalog)


def main() -> None:
    population = build_population()
    detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                            catalog=population.catalog,
                            resolver=population.resolver())

    laptop = StudyCrawler(population, profile=vanilla_firefox()).crawl(
        sites=[population.sites["laptop-store.example"]])
    phone = StudyCrawler(population, profile=chrome()).crawl(
        sites=[population.sites["phone-store.example"]])

    laptop_events = detector.detect(laptop.log)
    phone_events = detector.detect(phone.log)

    print("laptop (Firefox) leaked to: %s"
          % sorted({e.receiver for e in laptop_events}))
    print("phone  (Chrome)  leaked to: %s"
          % sorted({e.receiver for e in phone_events}))
    print()

    matches = match_profiles(laptop_events, phone_events)
    if not matches:
        print("no cross-device joins found")
        return
    print("Receivers able to join the two devices into one profile:")
    for match in matches:
        print("  %-16s id %s... (param %r) links %s + %s"
              % (match.receiver, match.token[:24], match.parameter_a,
                 "/".join(match.senders_a), "/".join(match.senders_b)))
    print()
    print("=> %s can follow this user across browsers and devices "
          "without any cookie." % ", ".join(linkable_receivers(matches)))


if __name__ == "__main__":
    main()
