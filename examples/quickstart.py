#!/usr/bin/env python3
"""Quickstart: run the paper's full methodology end to end.

Builds the calibrated synthetic web (404 Tranco-style shopping sites),
crawls every authentication flow with the measurement browser, detects PII
leakage from the captured traffic, and prints the paper's headline results
plus Tables 1-3 and Figure 2 side by side with the published values.

Run:  python examples/quickstart.py
"""

from repro import Study
from repro.reporting import (
    render_figure2,
    render_headline,
    render_table1,
    render_table2,
    render_table3,
)


def main() -> None:
    print("Building the calibrated population and crawling 404 sites "
          "(about 20 seconds)...")
    study = Study.calibrated()
    result = study.run()

    print()
    print(render_headline(result.analysis, total_sites=307,
                          leaking_requests=result.leaking_request_count))
    print()
    print(render_table1(result.analysis))
    print()
    print(render_figure2(result.analysis))
    print()
    print(render_table2(result.persistence))
    print()
    print(render_table3(result.table3_counts))
    print()
    mail = result.marketing_mail_counts()
    print("E-mail: %d marketing messages in the inbox, %d in spam "
          "(paper: 2172 / 141); messages from PII receivers: %d (paper: 0)"
          % (mail["inbox"], mail["spam"],
             len(result.third_party_mail_senders())))


if __name__ == "__main__":
    main()
