#!/usr/bin/env python3
"""Submit a study to a running ``repro-serve`` instance — stdlib only.

The minimal service client, start to finish:

1. ``POST /studies`` with a JSON job spec; read the job id back.
2. ``GET /studies/{id}/events`` and parse the SSE stream line by line
   (``id:`` / ``event:`` / ``data:`` frames, blank-line delimited),
   printing one progress line per heartbeat until the ``end`` event.
3. ``GET /studies/{id}/result`` for the Table-2-style attribution
   document and ``GET /studies/{id}/trace`` for the JSONL trace.
4. Reconcile: the per-name sums of the streamed heartbeat counter
   deltas must equal the ``counter`` records in the downloaded trace —
   the live stream and the archived trace describe the same crawl.

Run:  repro-serve --port 8642 &
      python examples/submit_study.py --url http://127.0.0.1:8642
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from typing import Dict, Iterator, Optional, Tuple


def request_json(url: str, payload: Optional[dict] = None,
                 timeout: float = 30.0) -> Tuple[int, dict]:
    """One JSON request/response round trip; returns (status, body)."""
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        body = exc.read().decode("utf-8", "replace")
        try:
            return exc.code, json.loads(body)
        except ValueError:
            return exc.code, {"error": body}


def sse_events(url: str, timeout: float = 300.0) -> Iterator[dict]:
    """Yield parsed SSE frames: {"id": .., "event": .., "data": ..}.

    The service speaks HTTP/1.0 — the stream simply ends when the
    server closes the connection after the terminal ``end`` event.
    """
    response = urllib.request.urlopen(url, timeout=timeout)
    frame: Dict[str, str] = {}
    with response:
        for raw in response:
            line = raw.decode("utf-8").rstrip("\n")
            if not line:                      # blank line = frame boundary
                if frame:
                    if "data" in frame:
                        frame["data"] = json.loads(frame["data"])
                    yield frame
                    frame = {}
                continue
            key, _, value = line.partition(":")
            frame[key] = value.lstrip(" ")
    if frame and "data" in frame:             # stream closed mid-frame
        frame["data"] = json.loads(frame["data"])
        yield frame


def follow_job(base: str, job_id: str) -> Tuple[dict, Dict[str, float]]:
    """Stream a job's events to stdout; return (end event, counter sums)."""
    sums: Dict[str, float] = {}
    end_event: dict = {}
    for frame in sse_events("%s/studies/%s/events" % (base, job_id)):
        kind = frame.get("event", "message")
        data = frame.get("data", {})
        if kind == "heartbeat":
            for name, delta in (data.get("counters") or {}).items():
                sums[name] = sums.get(name, 0.0) + float(delta)
            if not data.get("final"):
                print("  [%s] shard %s  %s/%s  %s (%s)"
                      % (frame.get("id"), data.get("shard"),
                         data.get("crawled"), data.get("total"),
                         data.get("domain"), data.get("status")))
        elif kind in ("state", "supervision"):
            print("  [%s] %s: %s" % (frame.get("id"), kind,
                                     data.get("state", data.get("kind"))))
        elif kind == "end":
            end_event = data
            print("  [%s] end: %s" % (frame.get("id"), data.get("state")))
            break
    return end_event, sums


def trace_counters(base: str, job_id: str) -> Dict[str, float]:
    """The ``counter`` records of the job's archived trace, by name."""
    counters: Dict[str, float] = {}
    with urllib.request.urlopen("%s/studies/%s/trace"
                                % (base, job_id), timeout=30) as resp:
        for raw in resp:
            record = json.loads(raw.decode("utf-8"))
            if record.get("type") == "counter":
                counters[record["name"]] = float(record["value"])
    return counters


def reconcile(streamed: Dict[str, float],
              archived: Dict[str, float]) -> list:
    """Names whose streamed heartbeat sum disagrees with the trace."""
    mismatches = []
    for name in sorted(set(streamed) | set(archived)):
        if not name.startswith("crawl."):
            continue
        if streamed.get(name, 0.0) != archived.get(name, 0.0):
            mismatches.append((name, streamed.get(name, 0.0),
                               archived.get(name, 0.0)))
    return mismatches


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="http://127.0.0.1:8642",
                        help="service base URL (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--sites", type=int, default=8)
    parser.add_argument("--trackers", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--out", default=None,
                        help="write the result document to this file")
    parser.add_argument("--save-trace", default=None, metavar="PATH",
                        help="also download the JSONL trace to PATH")
    args = parser.parse_args(argv)
    base = args.url.rstrip("/")

    spec = {"schema": 1, "kind": "study", "seed": args.seed,
            "sites": args.sites, "trackers": args.trackers,
            "workers": args.workers,
            "label": "examples/submit_study.py"}
    status, body = request_json(base + "/studies", payload=spec)
    if status == 503:
        print("service is at capacity; retry after %ss"
              % body.get("retry_after", "?"), file=sys.stderr)
        return 1
    if status != 202:
        print("submit failed (%d): %s" % (status, body), file=sys.stderr)
        return 1
    job_id = body["id"]
    print("submitted %s (state=%s)" % (job_id, body["state"]))

    end_event, streamed = follow_job(base, job_id)
    if end_event.get("state") != "complete":
        print("job ended in state %r: %s"
              % (end_event.get("state"), end_event.get("error")),
              file=sys.stderr)
        return 1

    status, result = request_json("%s/studies/%s/result" % (base, job_id))
    if status != 200:
        print("result fetch failed (%d): %s" % (status, result),
              file=sys.stderr)
        return 1
    print("fingerprint: %s" % result["fingerprint"])
    print("headline: %s" % result["headline"])
    rows = result["table2"]["rows"]
    print("table 2: %d persistent receiver(s)" % len(rows))
    for row in rows:
        print("  %-28s senders=%-3d methods=%s"
              % (row["receiver"], row["senders"], row["methods"]))

    archived = trace_counters(base, job_id)
    mismatches = reconcile(streamed, archived)
    if mismatches:
        for name, live, stored in mismatches:
            print("counter mismatch %s: streamed %s != trace %s"
                  % (name, live, stored), file=sys.stderr)
        return 1
    print("heartbeat/trace reconciliation: %d crawl.* counters agree"
          % sum(1 for name in archived if name.startswith("crawl.")))

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("result written to %s" % args.out)
    if args.save_trace:
        with urllib.request.urlopen("%s/studies/%s/trace"
                                    % (base, job_id), timeout=30) as resp:
            payload = resp.read()
        with open(args.save_trace, "wb") as fh:
            fh.write(payload)
        print("trace written to %s" % args.save_trace)
    return 0


if __name__ == "__main__":
    sys.exit(main())
