#!/usr/bin/env python3
"""Publisher-side mitigation: terminate PII transfers without breakage.

The paper concludes that "site publishers should take a more proactive
approach to terminating this type of data transfer".  This example deploys
``repro.mitigation.PiiFirewall`` — an outbound scrubber built from the same
candidate-token machinery as the detector — on a site that leaks through
all four channels, and shows that (1) every leak disappears, (2) every
tracker request still completes, and (3) nothing in the auth flow breaks.

Run:  python examples/pii_firewall.py
"""

from repro.core import CandidateTokenSet, LeakAnalysis, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.mitigation import PiiFirewall
from repro.websim import (
    LeakBehavior,
    TrackerEmbed,
    Website,
    build_default_catalog,
)
from repro.websim.population import Population


def build_leaky_site(catalog) -> Website:
    return Website(
        domain="leaky-shop.example",
        embeds=[
            TrackerEmbed(catalog.get("facebook.com"),
                         LeakBehavior(("uri", "payload"), (("sha256",),))),
            TrackerEmbed(catalog.get("criteo.com"),
                         LeakBehavior(("uri",), ((),))),  # plaintext!
            TrackerEmbed(catalog.get("omtrdc.net"),
                         LeakBehavior(("cookie",), (("sha256",),))),
        ],
        cname_records={"metrics": "leaky-shop.example.sc.omtrdc.net"})


def run(population, firewall=None):
    dataset = StudyCrawler(population, firewall=firewall).crawl()
    detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                            catalog=population.catalog,
                            resolver=population.resolver())
    analysis = LeakAnalysis(detector.detect(dataset.log))
    tracker_requests = sum(
        1 for entry in dataset.log
        if not entry.was_blocked
        and entry.request.url.host != "www.leaky-shop.example")
    flow_ok = dataset.flows["leaky-shop.example"].succeeded
    return analysis, tracker_requests, flow_ok


def main() -> None:
    catalog = build_default_catalog()
    site = build_leaky_site(catalog)
    population = Population(sites={site.domain: site}, catalog=catalog)

    before, requests_before, ok_before = run(population)
    print("WITHOUT firewall: %d receivers obtain PII (%s); "
          "%d third-party requests; flow ok: %s"
          % (len(before.receivers()), ", ".join(before.receivers()),
             requests_before, ok_before))

    tokens = CandidateTokenSet(DEFAULT_PERSONA)
    firewall = PiiFirewall(tokens, resolver=population.resolver())
    after, requests_after, ok_after = run(population, firewall=firewall)
    print("WITH firewall:    %d receivers obtain PII; "
          "%d third-party requests; flow ok: %s"
          % (len(after.receivers()), requests_after, ok_after))
    print()
    print("firewall stats: %d requests scrubbed, %d locations redacted"
          % (firewall.scrubbed_requests, firewall.redactions))
    print("=> the trackers keep working (pageview pings intact); only "
          "the identifier payloads were removed.")


if __name__ == "__main__":
    main()
