#!/usr/bin/env python3
"""§5.1: why PII-based identifiers beat cookies — the clearing test.

A privacy-conscious user clears all cookies (and site data) between
sessions.  Cookie-based tracking starts from scratch: the tracker mints a
fresh ``tuid``.  PII-based tracking does not care: the moment the user
signs in again, the same SHA-256(email) arrives in the same parameter,
and the tracker re-links the "new" browser state to the old profile.

Run:  python examples/cookie_clearing.py
"""

from repro.browser import Browser, vanilla_firefox
from repro.core import CandidateTokenSet, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import AuthFlowRunner
from repro.mailsim import Mailbox
from repro.websim import (
    LeakBehavior,
    TrackerEmbed,
    Website,
    build_default_catalog,
)
from repro.websim.population import Population


def main() -> None:
    catalog = build_default_catalog()
    site = Website(
        domain="shop.example",
        embeds=[TrackerEmbed(catalog.get("facebook.com"),
                             LeakBehavior(("uri",), (("sha256",),)))])
    population = Population(sites={"shop.example": site}, catalog=catalog)
    mailbox = Mailbox(DEFAULT_PERSONA.email)
    server = population.build_server(
        mail_hook=lambda s, e, u: mailbox.deliver_confirmation(s, u))
    browser = Browser(profile=vanilla_firefox(), server=server,
                      resolver=population.resolver(), catalog=catalog)
    runner = AuthFlowRunner(browser, DEFAULT_PERSONA, mailbox)
    detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                            catalog=catalog,
                            resolver=population.resolver())

    def session(label):
        runner.run(site)
        cookie_ids = sorted({c.value for c in browser.jar.all_cookies()
                             if c.name == "tuid"})
        pii_ids = sorted({e.token for e in detector.detect(browser.log)
                          if e.parameter == "udff[em]"})
        print("%s:" % label)
        print("  tracker cookie id(s): %s"
              % (", ".join(v[:16] + "..." for v in cookie_ids) or "(none)"))
        print("  PII identifier(s):    %s"
              % ", ".join(v[:16] + "..." for v in pii_ids))
        return cookie_ids, pii_ids

    cookies_1, pii_1 = session("session 1")
    print("\n-- user clears all cookies and site data --\n")
    browser.jar.clear()
    browser.tracker_storage.clear()
    browser.log.entries.clear()
    cookies_2, pii_2 = session("session 2")

    print()
    print("cookie identifier survived clearing: %s"
          % ("yes" if set(cookies_1) & set(cookies_2) else "NO"))
    print("PII identifier survived clearing:    %s"
          % ("YES" if pii_1 == pii_2 and pii_1 else "no"))
    print()
    print("=> clearing cookies resets cookie-based tracking, but the "
          "tracker re-links the profile the moment the user signs in "
          "again — no client-side state required.")
    assert not (set(cookies_1) & set(cookies_2))
    assert pii_1 == pii_2


if __name__ == "__main__":
    main()
