"""Figure 2: top 15 third-party receiver domains by sender count."""

from repro.reporting import render_figure2, render_receiver_degree_histogram


def test_bench_figure2(benchmark, analysis, emit):
    ranking = benchmark(lambda: analysis.figure2(top_n=15))
    emit("figure2", render_figure2(analysis))
    emit("receiver_degrees", render_receiver_degree_histogram(analysis))
    assert ranking[0][0] == "facebook.com"
    assert abs(ranking[0][2] - 60.0) < 0.5
