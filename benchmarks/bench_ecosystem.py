"""Extension study: ecosystem structure and statistical stability.

Two additions on top of the paper's raw counts:

* bootstrap confidence intervals over the per-sender statistics (how
  stable are "2.97 receivers per sender" / "46.15% with >= 3" under
  resampling of the 130 senders?), and
* graph analytics over the sender-receiver bipartite graph — coverage
  concentration ("blocking the top-k receivers fully protects x% of
  senders") and receiver co-occurrence (the data-sharing precondition
  §5.2 warns about).
"""

from repro.core.stats import headline_intervals
from repro.datasets import paper
from repro.tracking import (
    build_leak_graph,
    coverage_curve,
    exposure_summary,
    receiver_cooccurrence,
)


def test_bench_bootstrap_intervals(benchmark, analysis, emit):
    intervals = benchmark(lambda: headline_intervals(analysis,
                                                     n_resamples=1000))
    lines = ["Bootstrap 95% confidence intervals (per-sender resampling):"]
    for name, result in intervals.items():
        lines.append("  %-28s %s" % (name, result))
    mean_ci = intervals["mean_receivers_per_sender"]
    share_ci = intervals["pct_senders_with_3plus"]
    lines.append("")
    lines.append("paper values: mean %.2f (in CI: %s), >=3 share %.2f%% "
                 "(in CI: %s)"
                 % (paper.MEAN_RECEIVERS_PER_SENDER,
                    mean_ci.contains(paper.MEAN_RECEIVERS_PER_SENDER),
                    paper.PCT_SENDERS_WITH_3PLUS_RECEIVERS,
                    share_ci.contains(
                        paper.PCT_SENDERS_WITH_3PLUS_RECEIVERS)))
    emit("bootstrap", "\n".join(lines))
    assert mean_ci.contains(paper.MEAN_RECEIVERS_PER_SENDER)


def test_bench_ecosystem_graph(benchmark, analysis, emit):
    def measure():
        graph = build_leak_graph(analysis)
        return (graph, coverage_curve(graph),
                receiver_cooccurrence(graph, min_shared=10),
                exposure_summary(analysis))

    graph, curve, cooccurrence, exposure = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    curve_points = dict(curve)
    lines = ["Ecosystem structure (sender-receiver bipartite graph):",
             "  nodes: %d, edges: %d"
             % (graph.number_of_nodes(), graph.number_of_edges()),
             "  coverage: blocking top-5 receivers fully protects "
             "%.1f%% of senders; top-20: %.1f%%; top-50: %.1f%%"
             % (curve_points[5], curve_points[20], curve_points[50]),
             "",
             "Receiver pairs sharing >= 10 senders (server-side "
             "data-sharing potential):"]
    for first, second, shared in cooccurrence[:8]:
        lines.append("  %-22s + %-22s %3d shared senders"
                     % (first, second, shared))
    lines.append("")
    lines.append("user exposure: %d flows leaked, mean %.2f receivers "
                 "per flow, max %d, %.0f%% of flows feed facebook.com"
                 % (exposure.flows_with_leakage,
                    exposure.mean_receivers_per_flow,
                    exposure.max_receivers_per_flow,
                    exposure.pct_flows_feeding_facebook))
    emit("ecosystem", "\n".join(lines))

    assert graph.number_of_nodes() == 230  # 130 senders + 100 receivers
    assert curve_points[100] == 100.0
    assert any(pair[:2] == ("facebook.com", "pinterest.com")
               for pair in cooccurrence)
    assert exposure.pct_flows_feeding_facebook == 60.0
