"""Figure 1: the four PII leakage methods, one walkthrough each.

Builds a one-site universe per channel (referer, request URI, cookie via
CNAME cloaking, payload body), runs the authentication flow, and renders
the annotated leak trace the way Figure 1 illustrates the mechanisms.
"""

import pytest

from repro.core import CandidateTokenSet, LeakDetector
from repro.core.leakmodel import (
    CHANNEL_COOKIE,
    CHANNEL_PAYLOAD,
    CHANNEL_URI,
)
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.reporting import render_leak_trace
from repro.websim import (
    LeakBehavior,
    SiteAuthConfig,
    TrackerEmbed,
    Website,
    build_default_catalog,
)
from repro.websim.population import Population


def _one_site_universe(channel):
    catalog = build_default_catalog()
    if channel == "referer":
        site = Website(domain="shop.example",
                       auth=SiteAuthConfig(signup_method="GET",
                                           signup_fields=("email",
                                                          "password")),
                       embeds=[TrackerEmbed(catalog.get("criteo.com"))])
    elif channel == CHANNEL_COOKIE:
        site = Website(
            domain="shop.example",
            embeds=[TrackerEmbed(
                catalog.get("omtrdc.net"),
                LeakBehavior((CHANNEL_COOKIE,), (("sha256",),)))],
            cname_records={"metrics": "shop.example.sc.omtrdc.net"})
    else:
        site = Website(
            domain="shop.example",
            embeds=[TrackerEmbed(
                catalog.get("facebook.com"),
                LeakBehavior((channel,), (("sha256",),)))])
    return Population(sites={"shop.example": site}, catalog=catalog)


@pytest.mark.parametrize("channel", ["referer", CHANNEL_URI,
                                     CHANNEL_COOKIE, CHANNEL_PAYLOAD])
def test_bench_leak_channel(benchmark, channel, emit):
    population = _one_site_universe(channel)

    def run():
        dataset = StudyCrawler(population).crawl()
        detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                                catalog=population.catalog,
                                resolver=population.resolver())
        return detector.detect(dataset.log)

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    channel_events = [e for e in events if e.channel == channel]
    assert channel_events, "channel %s produced no leak" % channel
    emit("figure1_%s" % channel,
         render_leak_trace(channel_events,
                           "Figure 1 walkthrough — via %s:" % channel))
