"""Table 3: privacy-policy disclosure audit over the 130 senders."""

from repro.policy import classify_policies, policies_for_sites, table3
from repro.reporting import render_table3


def test_bench_table3(benchmark, study_spec, analysis, emit):
    site_classes = {
        domain: study_spec.population.sites[domain].policy_class
        for domain in analysis.senders()}
    documents = policies_for_sites(site_classes)

    counts = benchmark(lambda: table3(classify_policies(documents)))
    emit("table3", render_table3(counts))
    assert counts == {"disclose_not_specific": 102,
                      "disclose_specific": 9,
                      "no_description": 15,
                      "explicitly_not_shared": 4}
