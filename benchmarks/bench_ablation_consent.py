"""Ablation: what if the operator had rejected every cookie banner?

The paper's §3.2 procedure accepts all consent pop-ups, so its numbers
describe the consented web.  This ablation re-crawls the 130 leaking
senders with every banner refused and measures the residual leakage:
sites without a CMP keep leaking, dark-pattern sites ignore the refusal
(§6's manipulation observation), and GET-form referer leaks survive
because consent gates snippet *execution*, not resource loading.
"""

from repro.core import CandidateTokenSet, LeakAnalysis, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.websim.consent import CONSENT_ACCEPT_ALL, CONSENT_REJECT_ALL


def test_bench_consent_ablation(benchmark, study_spec, emit):
    population = study_spec.population
    sites = [population.sites[d] for d in study_spec.leaking_domains]
    tokens = CandidateTokenSet(DEFAULT_PERSONA)

    def measure():
        rows = []
        for policy in (CONSENT_ACCEPT_ALL, CONSENT_REJECT_ALL):
            dataset = StudyCrawler(population,
                                   consent_policy=policy).crawl(sites=sites)
            detector = LeakDetector(tokens, catalog=population.catalog,
                                    resolver=population.resolver())
            analysis = LeakAnalysis(detector.detect(dataset.log))
            rows.append((policy, len(analysis.senders()),
                         len(analysis.receivers())))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    honoring_cmp = sum(
        1 for domain in study_spec.leaking_domains
        if population.sites[domain].consent is not None
        and population.sites[domain].consent.honors_consent)
    dark = sum(
        1 for domain in study_spec.leaking_domains
        if population.sites[domain].consent is not None
        and not population.sites[domain].consent.honors_consent)

    reject_row = rows[1]
    lines = ["Ablation: consent decision -> residual leakage "
             "(130 leaking senders)"]
    for policy, senders, receivers in rows:
        lines.append("  %-12s %3d senders  %3d receivers"
                     % (policy, senders, receivers))
    lines.append("")
    lines.append("of the 130 senders: %d run a consent-honoring CMP, "
                 "%d run a dark-pattern CMP, %d run none"
                 % (honoring_cmp, dark, 130 - honoring_cmp - dark))
    lines.append("=> refusing every banner still leaves %d of 130 "
                 "senders leaking (no CMP, dark patterns, or passive "
                 "referer leaks); consent alone is not a defence against "
                 "this tracking channel." % reject_row[1])
    emit("ablation_consent", "\n".join(lines))

    accept, reject = rows
    assert accept[1] == 130
    assert reject[1] < accept[1]
    assert reject[1] >= 130 - honoring_cmp   # dark/CMP-less sites remain
