"""§4.2.3 e-mail observations: 2,172 inbox / 141 spam, none third-party."""

from repro.mailsim import FOLDER_INBOX, FOLDER_SPAM, KIND_MARKETING


def test_bench_email_audit(benchmark, crawl, analysis, emit):
    def audit():
        mailbox = crawl.mailbox
        inbox = len(mailbox.messages(folder=FOLDER_INBOX,
                                     kind=KIND_MARKETING))
        spam = len(mailbox.messages(folder=FOLDER_SPAM,
                                    kind=KIND_MARKETING))
        receivers = set(analysis.receivers())
        third_party = [domain for domain in mailbox.sender_domains()
                       if domain in receivers]
        return inbox, spam, third_party

    inbox, spam, third_party = benchmark(audit)
    emit("email", "\n".join([
        "E-mail audit (measured vs paper):",
        "  marketing inbox messages: %d (paper 2172)" % inbox,
        "  marketing spam messages:  %d (paper 141)" % spam,
        "  messages from PII-receiving third parties: %d (paper 0)"
        % len(third_party),
    ]))
    assert inbox == 2172 and spam == 141 and third_party == []
