"""§4.2 headline results: the full crawl -> detect pipeline.

Regenerates: 130 senders / 100 receivers / 42.3% of 307 sites / 1,522
leaking requests / mean 2.97 receivers per sender / 46.15% with >= 3 /
maximum 16 (loccitane.com).
"""

import pytest

from repro.core import CandidateTokenSet, LeakAnalysis, LeakDetector
from repro.core.detector import leaking_requests
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.reporting import render_headline
from repro.websim.shopping import build_study_population


def test_bench_full_pipeline(benchmark, emit):
    """Time the entire §3-§4 methodology (build + crawl + detect)."""

    def pipeline():
        spec = build_study_population()
        dataset = StudyCrawler(spec.population).crawl()
        detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                                catalog=spec.catalog,
                                resolver=spec.population.resolver())
        events = detector.detect(dataset.log)
        return dataset, detector, events

    dataset, detector, events = benchmark.pedantic(pipeline, rounds=1,
                                                   iterations=1)
    analysis = LeakAnalysis(events)
    count = len(leaking_requests(dataset.log, detector))
    emit("headline", render_headline(analysis, total_sites=307,
                                     leaking_requests=count))
    assert len(analysis.senders()) == 130


def test_bench_detection_only(benchmark, crawl, detector):
    """Throughput of the leak detector over the captured traffic."""
    events = benchmark.pedantic(lambda: detector.detect(crawl.log),
                                rounds=3, iterations=1)
    assert events
