"""Ablation: candidate-token chain depth (§3.1).

The paper encodes/hashes each PII value up to three layers deep.  This
ablation measures, per depth, the candidate-set size, its build cost, and
the detection recall over the calibrated crawl — depth 1 misses the
"SHA256 of MD5" and "BASE64+SHA1+SHA256" obfuscations that depth >= 2
catches (Table 1b's multi-layer rows).
"""

import time

from repro.core import (
    CandidateTokenSet,
    LeakAnalysis,
    LeakDetector,
    TokenSetConfig,
)
from repro.core.persona import DEFAULT_PERSONA


def test_bench_depth_ablation(benchmark, study_spec, crawl, emit):
    def measure():
        rows = []
        for depth in (1, 2, 3):
            started = time.perf_counter()
            tokens = CandidateTokenSet(DEFAULT_PERSONA,
                                       TokenSetConfig(max_depth=depth))
            build_seconds = time.perf_counter() - started
            detector = LeakDetector(
                tokens, catalog=study_spec.catalog,
                resolver=study_spec.population.resolver())
            analysis = LeakAnalysis(detector.detect(crawl.log))
            multilayer = sum(
                1 for event in analysis.events if len(event.chain) >= 2)
            som_row = next((row for row in analysis.table1b()
                            if row.label == "sha256 of md5"), None)
            rows.append((depth, tokens.token_count, build_seconds,
                         len(analysis.senders()), multilayer,
                         som_row.senders if som_row else 0))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Ablation: token-set depth -> size / build / recall"]
    for depth, count, seconds, senders, multilayer, som in rows:
        lines.append("  depth %d: %6d tokens  build %5.2fs  "
                     "%3d senders  %4d multi-layer events  "
                     "%d 'sha256 of md5' senders"
                     % (depth, count, seconds, senders, multilayer, som))
    lines.append("")
    lines.append("sender-level recall is already complete at depth 1 "
                 "(multi-layer leakers also leak single-layer forms "
                 "elsewhere); depth >= 2 is required to *classify* the "
                 "Table 1b multi-layer rows (criteo's SHA256-of-MD5).")
    emit("ablation_depth", "\n".join(lines))

    depth1, depth2, depth3 = rows
    assert depth1[1] < depth2[1] < depth3[1]     # set grows with depth
    assert depth1[4] == 0                        # no multi-layer at depth 1
    assert depth3[3] == 130                      # full recall at depth 3
    assert depth1[5] == 0                        # s-o-m invisible at depth 1
    assert depth2[5] == 2 and depth3[5] == 2     # recovered at depth >= 2
