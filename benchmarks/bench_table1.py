"""Table 1 (a/b/c): leakage breakdowns by method, encoding and PII type."""

from repro.core import LeakAnalysis
from repro.reporting import render_table1


def test_bench_table1(benchmark, events, emit):
    analysis = benchmark(lambda: LeakAnalysis(events))
    emit("table1", render_table1(analysis))
    rows_a = {row.label: row for row in analysis.table1a()}
    assert rows_a["uri"].senders == 118
    assert rows_a["cookie"].senders == 5
    rows_b = {row.label: row for row in analysis.table1b()}
    assert rows_b["sha256"].senders == 91
    rows_c = {row.label: row for row in analysis.table1c()}
    assert rows_c["email,name"].receivers == 12
