"""Table 2: the twenty persistent-tracking providers (§5.2 funnel)."""

from repro.reporting import render_table2
from repro.tracking import PersistenceAnalyzer


def test_bench_table2(benchmark, events, emit):
    report = benchmark(lambda: PersistenceAnalyzer(events).report())
    emit("table2", render_table2(report))
    assert report.provider_count == 20
    assert len(report.cross_site_receivers) == 34
