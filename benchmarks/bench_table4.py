"""Table 4: EasyList / EasyPrivacy detection performance (§7.2)."""

from repro.blocklist import BlocklistEvaluator
from repro.datasets import paper
from repro.reporting import render_table4


def test_bench_table4(benchmark, crawl, detector, emit):
    evaluator = BlocklistEvaluator(detector)
    report = benchmark.pedantic(lambda: evaluator.evaluate(crawl.log),
                                rounds=1, iterations=1)
    emit("table4", render_table4(report))

    # Shape assertions: EP >> EL, cookie channel fully covered, the three
    # unlisted tracking providers missed.
    assert report.senders["easyprivacy"]["cookie"].pct == 100.0
    assert report.receivers["easylist"]["total"].blocked <= 10
    assert abs(report.senders["combined"]["total"].pct
               - paper.TABLE4_SENDERS["combined"]["total"][1]) < 8.0
