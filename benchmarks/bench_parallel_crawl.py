"""Serial vs. parallel crawl benchmark (the perf trajectory anchor).

Times the sharded crawl engine (:class:`repro.crawler.ParallelCrawler`)
at several worker counts over growing populations and writes a
machine-readable ``BENCH_parallel_crawl.json`` (wall-clock, sites/sec,
speedup vs. the 1-worker serial reference, worker count, host CPU count)
so future PRs can regress against a recorded trajectory.

Run standalone (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_parallel_crawl.py --quick
    PYTHONPATH=src python benchmarks/bench_parallel_crawl.py   # full sweep

Full mode sweeps the calibrated 404-site population plus generated 1k-
and 5k-site webs with 1/2/4 workers; quick mode crawls a generated
404-site web with 1/2 workers.  Every sweep also *verifies* the engine's
fingerprint contract — all worker counts must produce bit-identical
merged datasets — so the benchmark doubles as an integration check.

Parallel speedup is bounded by physical cores: on a 1-CPU host the
workers serialize and the speedup column reads ~1.0x.  The JSON records
``environment.cpu_count`` so a trajectory reader can tell "no speedup
because no cores" from a real regression; CI runners with 4 vCPUs are
where the >= 2x @ 4-worker expectation is meaningful.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from harness import BenchCase, BenchReport, StageTimes, timed  # noqa: E402

from repro import hashes  # noqa: E402
from repro.core import CompiledStudyAssets, Study, StudyConfig  # noqa: E402
from repro.core.assets import clear_process_assets  # noqa: E402
from repro.crawler import (  # noqa: E402
    CalibratedPopulationSpec,
    GeneratedPopulationSpec,
    ParallelCrawler,
)
from repro.obs import Recorder, write_trace  # noqa: E402
from repro.websim.generator import GeneratorConfig  # noqa: E402

#: Shard count used for every measurement: fixed (and >= the largest
#: worker count) so the layout — and hence the fingerprint — is the same
#: across the whole sweep and speedup isolates pure scheduling.
NUM_SHARDS = 8

OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out",
                        "BENCH_parallel_crawl.json")


def _generated_spec(n_sites: int) -> GeneratedPopulationSpec:
    return GeneratedPopulationSpec(
        seed=404, config=GeneratorConfig(n_sites=n_sites, n_trackers=20,
                                         leak_probability=0.5,
                                         confirmation_probability=0.2))


def _sweeps(quick: bool):
    """(population label, spec, site count) triples to measure."""
    if quick:
        return [("generated-404", _generated_spec(404), 404)]
    return [
        ("calibrated-404", CalibratedPopulationSpec(), 404),
        ("generated-1k", _generated_spec(1000), 1000),
        ("generated-5k", _generated_spec(5000), 5000),
    ]


def run(quick: bool = False, out_path: str = OUT_PATH,
        worker_counts=None, trace_path=None) -> BenchReport:
    """Execute the sweep and write the JSON report; returns the report.

    Raises :class:`AssertionError` if any worker count produces a
    different merged fingerprint than the serial reference — the bench
    refuses to record timings for a broken engine.

    ``trace_path`` additionally runs every engine with a
    :class:`repro.obs.Recorder`, asserts the merged recorder snapshot is
    identical across worker counts (the tracing analogue of the
    fingerprint contract), and writes the first population's baseline
    trace — crawl plus detect/analyze stages — as JSONL.
    """
    if worker_counts is None:
        worker_counts = (1, 2) if quick else (1, 2, 4)
    report = BenchReport(name="parallel_crawl")
    report.note("speedup is relative to the 1-worker serial reference of "
                "the same population and shard layout (num_shards=%d)"
                % NUM_SHARDS)
    cpu_count = os.cpu_count() or 1
    if cpu_count < max(worker_counts):
        report.note("host has %d CPU(s): worker processes serialize and "
                    "speedup cannot exceed ~1.0x here" % cpu_count)

    traced = None  # (population label, baseline recorder) for --trace
    for label, spec, n_sites in _sweeps(quick):
        fingerprints = {}
        snapshots = {}
        for workers in worker_counts:
            # Every case starts cold — fresh assets, empty process
            # memos — so a case measures the same thing whether the
            # sweep runs in one process or one invocation per worker
            # count (as CI does).  Within a case the assets are
            # compiled once and threaded exactly as Study.crawl does:
            # the parent seeds its process memo, in-process shards
            # reuse the bundle, and forked workers inherit it
            # copy-on-write instead of rebuilding per shard.
            clear_process_assets()
            hashes.clear_chain_cache()
            assets = CompiledStudyAssets.for_population(
                spec.build(), population_spec=spec)
            recorder = Recorder() if trace_path else None
            engine = ParallelCrawler(spec, workers=workers,
                                     num_shards=NUM_SHARDS,
                                     assets=assets,
                                     recorder=recorder,
                                     resources=True)
            stages = StageTimes()
            with timed() as timer:
                with stages.time("crawl"):
                    run_result = engine.run()
            assert run_result.complete, (
                "benchmark crawl incomplete for %s workers=%d" % (label,
                                                                  workers))
            dataset = run_result.dataset
            fingerprints[workers] = dataset.fingerprint()
            if recorder is not None:
                # Snapshot before any analyze spans are added: the
                # crawl trace must be identical at every worker count.
                snapshots[workers] = recorder.snapshot()
            # Per-stage breakdown for *every* case — parallel cases
            # report the same crawl/analyze split as the serial
            # reference (wall_seconds stays crawl-only for trajectory
            # comparability with earlier reports), and analyze reuses
            # the compiled bundle the way a real study does.
            study = Study(dataset.population,
                          config=StudyConfig(recorder=recorder,
                                             assets=assets))
            with stages.time("analyze"):
                study.analyze(dataset)
            if recorder is not None and workers == worker_counts[0]:
                traced = traced or (label, recorder)
            case = report.add(BenchCase(
                label="%s/workers-%d" % (label, workers),
                wall_seconds=timer.seconds, items=len(dataset.flows),
                params={"population": label, "sites": n_sites,
                        "workers": workers, "num_shards": NUM_SHARDS},
                stages=stages.as_dict()))
            # Per-case resource cost (CPU/GC summed, RSS maxed across
            # shards) alongside the timings; pure ops telemetry, the
            # fingerprint assertions below are unaffected.
            report.record_resources(case, run_result.resources.values())
            baseline = "%s/workers-1" % label
            speedup = report.speedup_over(baseline, case)
            if speedup is not None:
                case.extra["speedup_vs_serial"] = round(speedup, 2)
            print("%-26s %7.2fs  %6.1f sites/s  speedup %sx"
                  % (case.label, case.wall_seconds, case.items_per_second,
                     "%.2f" % speedup if speedup else "  - "))
        serial_fp = fingerprints[worker_counts[0]]
        assert all(fp == serial_fp for fp in fingerprints.values()), (
            "fingerprint mismatch across worker counts for %s" % label)
        report.note("%s: merged fingerprint %s identical across workers %s"
                    % (label, serial_fp[:16], list(worker_counts)))
        if snapshots:
            first = snapshots[worker_counts[0]]
            assert all(snap == first for snap in snapshots.values()), (
                "merged recorder snapshot differs across worker counts "
                "for %s" % label)
            report.note("%s: merged trace identical across workers %s"
                        % (label, list(worker_counts)))

    if trace_path and traced is not None:
        label, recorder = traced
        write_trace(recorder, trace_path)
        report.note("trace (%s baseline run) written to %s"
                    % (label, trace_path))
        print("wrote %s" % trace_path)

    path = report.write(out_path)
    print("wrote %s" % path)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Serial vs. parallel sharded crawl benchmark.")
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized sweep (generated 404-site "
                             "population, 1-2 workers)")
    parser.add_argument("--out", default=OUT_PATH, metavar="PATH",
                        help="where to write BENCH_parallel_crawl.json "
                             "(default: benchmarks/out/)")
    parser.add_argument("--workers", type=int, nargs="+", default=None,
                        metavar="N", help="override the worker counts "
                                          "to sweep (first is baseline)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="also record repro.obs traces, assert the "
                             "merged trace is identical across worker "
                             "counts, and write the baseline trace here "
                             "as JSONL")
    args = parser.parse_args(argv)
    run(quick=args.quick, out_path=args.out,
        worker_counts=tuple(args.workers) if args.workers else None,
        trace_path=args.trace)
    return 0


if __name__ == "__main__":
    sys.exit(main())
