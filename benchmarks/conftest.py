"""Shared benchmark fixtures.

The calibrated crawl and detection pass are produced once per session and
shared; each benchmark times its own analysis stage and prints the paper
table it regenerates (also written to ``benchmarks/out/``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core import CandidateTokenSet, LeakAnalysis, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.websim.shopping import build_study_population

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def study_spec():
    return build_study_population()


@pytest.fixture(scope="session")
def crawl(study_spec):
    return StudyCrawler(study_spec.population).crawl()


@pytest.fixture(scope="session")
def tokens():
    return CandidateTokenSet(DEFAULT_PERSONA)


@pytest.fixture(scope="session")
def detector(study_spec, tokens):
    return LeakDetector(tokens, catalog=study_spec.catalog,
                        resolver=study_spec.population.resolver())


@pytest.fixture(scope="session")
def events(crawl, detector):
    return detector.detect(crawl.log)


@pytest.fixture(scope="session")
def analysis(events):
    return LeakAnalysis(events)


@pytest.fixture(scope="session")
def emit():
    """Print a rendered artifact and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print("\n" + "=" * 72)
        print(text)
        (OUT_DIR / ("%s.txt" % name)).write_text(text + "\n")

    return _emit
