"""Extension study: crowdsourced data collection (§5.2 future work).

Measures how the §5.2 funnel improves as independent contributors are
merged: single-vantage sampling leaves most multi-sender receivers looking
like one-offs; the merged panel recovers them.
"""

from repro.crowd import CrowdStudy, make_panel
from repro.websim.generator import GeneratorConfig, generate_population


def test_bench_crowd_expansion(benchmark, emit):
    population = generate_population(seed=21, config=GeneratorConfig(
        n_sites=24, n_trackers=8, leak_probability=0.6))
    panel = make_panel(list(population.sites), n_contributors=3,
                       overlap=0.2)

    def measure():
        rows = []
        for count in (1, 2, 3):
            result = CrowdStudy(population, panel[:count]).run()
            rows.append((count, len(result.analysis.senders()),
                         len(result.analysis.receivers()),
                         len(result.persistence_report
                             .cross_site_receivers)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Crowdsourced expansion (24-site universe, 20% shared "
             "sample):",
             "  %-14s %8s %10s %12s" % ("contributors", "senders",
                                        "receivers", "cross-site")]
    for count, senders, receivers, cross_site in rows:
        lines.append("  %-14d %8d %10d %12d"
                     % (count, senders, receivers, cross_site))
    emit("crowd", "\n".join(lines))

    assert rows[-1][3] > rows[0][3]      # merging reveals cross-site IDs
    assert rows[-1][1] >= rows[0][1]
