"""Reproducible benchmark harness.

Small, dependency-free timing utilities shared by the performance
benchmarks (today: ``bench_parallel_crawl.py``).  The point is not
microsecond precision but a *machine-readable perf trajectory*: every
run emits a JSON document with enough context (host CPU count, Python
version, per-case wall-clock and throughput) that future PRs can diff
one run against another and catch regressions.

Usage::

    from harness import BenchCase, BenchReport, timed

    report = BenchReport(name="parallel_crawl")
    with timed() as t:
        do_work()
    report.add(BenchCase(label="serial-404", wall_seconds=t.seconds,
                         items=404, params={"workers": 1}))
    report.write("benchmarks/out/BENCH_parallel_crawl.json")

Timing honesty: wall-clock comes from :func:`time.perf_counter`, runs
are not repeated unless the caller repeats them, and the report records
``cpu_count`` because parallel speedup is bounded by physical cores —
a 1-core container cannot show one, and pretending otherwise would
poison the trajectory.

The harness is also the CLI front end of the committed baseline
registry (``benchmarks/baselines/``, gate logic in
:mod:`repro.obs.regress`)::

    # refresh the committed baseline (median-of-N samples)
    PYTHONPATH=src python benchmarks/harness.py --update-baseline --repeat 3

    # gate fresh report(s) against the committed baseline (CI)
    PYTHONPATH=src python benchmarks/harness.py \\
        --check benchmarks/out/BENCH_parallel_crawl.json

    # append a run to the append-only history JSONL
    PYTHONPATH=src python benchmarks/harness.py \\
        --append-history benchmarks/out/BENCH_parallel_crawl.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

#: Schema version of the emitted JSON; bump on incompatible changes.
SCHEMA_VERSION = 1


class _Timer:
    """Result object yielded by :func:`timed`."""

    def __init__(self) -> None:
        self.seconds = 0.0


@contextmanager
def timed() -> Iterator[_Timer]:
    """Context manager measuring wall-clock seconds of its body."""
    timer = _Timer()
    start = time.perf_counter()
    try:
        yield timer
    finally:
        timer.seconds = time.perf_counter() - start


class StageTimes:
    """Per-stage wall-clock breakdown for one bench case.

    Use :meth:`time` around each stage; attach the finished mapping as
    ``BenchCase(stages=...)`` so the JSON answers *where* the wall-clock
    went (crawl vs. detect vs. analyze), not just how long it was::

        stages = StageTimes()
        with stages.time("crawl"):
            dataset = crawl()
        with stages.time("analyze"):
            study.analyze(dataset)
        report.add(BenchCase(..., stages=stages.as_dict()))
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}

    @contextmanager
    def time(self, label: str) -> Iterator[None]:
        """Measure the body's wall-clock under ``label`` (accumulating)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[label] = self._seconds.get(label, 0.0) + elapsed

    def as_dict(self) -> Dict[str, float]:
        """{stage: seconds} in recording order, rounded for the JSON."""
        return {label: round(seconds, 4)
                for label, seconds in self._seconds.items()}


@dataclass
class BenchCase:
    """One measured configuration.

    ``items`` is the unit of throughput (for crawl benches: sites);
    ``params`` carries the configuration knobs (worker count, shard
    count, population size, ...) so the JSON is self-describing;
    ``stages`` optionally breaks the wall-clock down per pipeline stage
    (see :class:`StageTimes`).
    """

    label: str
    wall_seconds: float
    items: int = 0
    params: Dict[str, object] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)
    stages: Dict[str, float] = field(default_factory=dict)

    @property
    def items_per_second(self) -> float:
        """Throughput (0.0 when nothing was counted or time was ~0)."""
        if self.items <= 0 or self.wall_seconds <= 0.0:
            return 0.0
        return self.items / self.wall_seconds

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "label": self.label,
            "wall_seconds": round(self.wall_seconds, 4),
            "items": self.items,
            "items_per_second": round(self.items_per_second, 2),
        }
        if self.params:
            data["params"] = dict(self.params)
        if self.stages:
            data["stages"] = dict(self.stages)
        if self.extra:
            data.update(self.extra)
        return data


@dataclass
class BenchReport:
    """An accumulating benchmark report with a JSON serialization."""

    name: str
    cases: List[BenchCase] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, case: BenchCase) -> BenchCase:
        """Record one case (returned unchanged, for chaining)."""
        self.cases.append(case)
        return case

    def note(self, text: str) -> None:
        """Attach a free-form annotation to the report."""
        self.notes.append(text)

    def baseline(self, label: str) -> Optional[BenchCase]:
        """The first case with ``label``, if recorded."""
        for case in self.cases:
            if case.label == label:
                return case
        return None

    def speedup_over(self, baseline_label: str,
                     case: BenchCase) -> Optional[float]:
        """Wall-clock speedup of ``case`` relative to a named baseline.

        Returns ``None`` when the baseline is missing or unmeasurable.
        """
        base = self.baseline(baseline_label)
        if base is None or case.wall_seconds <= 0.0:
            return None
        return base.wall_seconds / case.wall_seconds

    def record_resources(self, case: BenchCase, shard_samples
                         ) -> Dict[str, float]:
        """Fold per-shard resource samples into ``case.extra``.

        ``shard_samples`` is an iterable of
        :class:`repro.obs.runtime.ResourceSampler` delta dicts (e.g.
        ``ParallelCrawlResult.resources.values()``); the aggregate —
        CPU/GC summed, RSS peaks maxed — lands under the case's
        ``resources`` key so bench JSON carries what a case *cost*
        alongside how long it took.  Returns the aggregate (empty when
        no samples were supplied).
        """
        from repro.obs.runtime import aggregate_resources
        totals = aggregate_resources(shard_samples)
        if totals:
            case.extra["resources"] = totals
        return totals

    def environment(self) -> Dict[str, object]:
        """Host facts that bound what the numbers can mean."""
        return {
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
            "platform": platform.platform(),
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "environment": self.environment(),
            "cases": [case.as_dict() for case in self.cases],
            "notes": list(self.notes),
        }

    def write(self, path: str) -> str:
        """Serialize the report to ``path`` (pretty JSON); returns path."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
        return path


# ---------------------------------------------------------------------------
# The baseline-registry CLI (gate logic lives in repro.obs.regress).
# ---------------------------------------------------------------------------

#: The committed registry directory (relative to this file).
BASELINES_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "baselines")

#: The bench the CLI operates on by default.
DEFAULT_BENCH = "parallel_crawl"


def _bench_runner(bench: str):
    """The ``run(quick=..., out_path=...)`` callable for a bench name.

    Benches with committed baselines register here so
    ``--update-baseline --bench NAME`` can re-record any of them.
    """
    if bench == "parallel_crawl":
        import bench_parallel_crawl
        return lambda full, out: bench_parallel_crawl.run(quick=not full,
                                                          out_path=out)
    if bench == "micro":
        import bench_micro
        return lambda full, out: bench_micro.run(quick=not full,
                                                 out_path=out)
    raise ValueError("no registered runner for bench %r (known: "
                     "parallel_crawl, micro)" % bench)


def _registry(args: argparse.Namespace):
    from repro.obs.regress import BaselineRegistry
    return BaselineRegistry(args.baseline_dir)


def _load_report(path: str) -> Dict[str, object]:
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError("%s: not a bench report" % path)
    return document


def _cmd_update_baseline(args: argparse.Namespace) -> int:
    """Run the bench ``--repeat`` times and fold samples into the baseline."""
    try:
        runner = _bench_runner(args.bench)
    except ValueError as exc:
        print("harness: error: %s" % exc, file=sys.stderr)
        return 2
    if args.repeat < 1:
        print("harness: error: --repeat must be >= 1", file=sys.stderr)
        return 2
    registry = _registry(args)
    out_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "out", "BENCH_%s.json" % args.bench)
    path = registry.path(args.bench)
    for repeat in range(args.repeat):
        print("== baseline sample %d/%d ==" % (repeat + 1, args.repeat))
        report = runner(args.full, out_path)
        path = registry.update(args.bench, report.as_dict())
        registry.append_history(report.as_dict(),
                                extra=_history_stamp("update-baseline"))
    print("baseline updated: %s" % path)
    print("history appended: %s" % registry.history_path)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Gate fresh report JSON(s) against the committed baseline."""
    from repro.obs.regress import BaselineError, check_ordering, check_report
    orderings = []
    for pair in args.assert_faster or ():
        faster, sep, slower = pair.partition(":")
        if not sep or not faster or not slower:
            print("harness: error: --assert-faster wants FASTER:SLOWER, "
                  "got %r" % pair, file=sys.stderr)
            return 2
        orderings.append((faster, slower))
    registry = _registry(args)
    try:
        baseline = registry.load(args.bench)
    except BaselineError as exc:
        print("harness: error: %s" % exc, file=sys.stderr)
        return 2
    # Multiple reports (e.g. separate workers-1 and workers-2 runs)
    # merge into one case table before the check.
    merged: Dict[str, object] = {"cases": [], "environment": None}
    for path in args.check:
        try:
            report = _load_report(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print("harness: error: %s: %s" % (path, exc), file=sys.stderr)
            return 2
        merged["cases"].extend(report.get("cases") or [])  # type: ignore
        merged["environment"] = report.get("environment")
    result = check_report(baseline, merged,
                          thresholds={"wall_seconds": args.threshold,
                                      "stage": args.threshold}
                          if args.threshold is not None else None,
                          require_all=args.require_all)
    if orderings:
        check_ordering(merged, orderings, out=result)
    print(result.render())
    return 0 if result.ok else 1


def _cmd_append_history(args: argparse.Namespace) -> int:
    """Append report JSON(s) to the append-only history JSONL."""
    registry = _registry(args)
    target = args.history
    for path in args.append_history:
        try:
            report = _load_report(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print("harness: error: %s: %s" % (path, exc), file=sys.stderr)
            return 2
        target = registry.append_history(
            report, extra=_history_stamp("run"), path=args.history)
    print("history appended: %s" % target)
    return 0


def _history_stamp(kind: str) -> Dict[str, object]:
    """Host-side context for a history entry.

    The registry itself never reads the clock (it sits inside the
    statan determinism scope); the stamp is supplied here, on the
    benchmarking side, where wall-clock is the whole point.
    """
    return {
        "kind": kind,
        "unix_time": round(time.time(), 3),
        "commit": os.environ.get("GITHUB_SHA", ""),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Bench baseline registry: record, gate, and log "
                    "perf trajectories (see repro.obs.regress).")
    parser.add_argument("--bench", default=DEFAULT_BENCH,
                        help="bench name (default: %(default)s)")
    parser.add_argument("--baseline-dir", default=BASELINES_DIR,
                        metavar="DIR",
                        help="registry directory (default: "
                             "benchmarks/baselines/)")
    actions = parser.add_mutually_exclusive_group(required=True)
    actions.add_argument("--update-baseline", action="store_true",
                         help="run the bench and fold fresh samples "
                              "into the committed baseline")
    actions.add_argument("--check", nargs="+", metavar="REPORT",
                         help="gate bench-report JSON file(s) against "
                              "the committed baseline; exit 1 on a "
                              "regression")
    actions.add_argument("--append-history", nargs="+", metavar="REPORT",
                         help="append bench-report JSON file(s) to the "
                              "history JSONL")
    parser.add_argument("--repeat", type=int, default=3, metavar="N",
                        help="samples to record with --update-baseline "
                             "(default: 3; the gate compares medians)")
    parser.add_argument("--full", action="store_true",
                        help="with --update-baseline: run the full "
                             "sweep instead of --quick")
    parser.add_argument("--threshold", type=float, default=None,
                        metavar="REL",
                        help="override the relative regression "
                             "threshold for --check (e.g. 0.75)")
    parser.add_argument("--require-all", action="store_true",
                        help="with --check: a baseline case missing "
                             "from the report is a failure, not a note")
    parser.add_argument("--assert-faster", action="append", default=None,
                        metavar="FASTER:SLOWER",
                        help="with --check: additionally require case "
                             "FASTER's wall-clock to be strictly below "
                             "case SLOWER's in the merged report "
                             "(repeatable); e.g. generated-404/workers-2"
                             ":generated-404/workers-1 gates parallel "
                             "payoff on multi-core runners")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="history JSONL path (default: "
                             "<baseline-dir>/BENCH_history.jsonl)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.update_baseline:
        return _cmd_update_baseline(args)
    if args.check:
        return _cmd_check(args)
    return _cmd_append_history(args)


if __name__ == "__main__":
    sys.exit(main())
