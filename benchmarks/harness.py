"""Reproducible benchmark harness.

Small, dependency-free timing utilities shared by the performance
benchmarks (today: ``bench_parallel_crawl.py``).  The point is not
microsecond precision but a *machine-readable perf trajectory*: every
run emits a JSON document with enough context (host CPU count, Python
version, per-case wall-clock and throughput) that future PRs can diff
one run against another and catch regressions.

Usage::

    from harness import BenchCase, BenchReport, timed

    report = BenchReport(name="parallel_crawl")
    with timed() as t:
        do_work()
    report.add(BenchCase(label="serial-404", wall_seconds=t.seconds,
                         items=404, params={"workers": 1}))
    report.write("benchmarks/out/BENCH_parallel_crawl.json")

Timing honesty: wall-clock comes from :func:`time.perf_counter`, runs
are not repeated unless the caller repeats them, and the report records
``cpu_count`` because parallel speedup is bounded by physical cores —
a 1-core container cannot show one, and pretending otherwise would
poison the trajectory.
"""

from __future__ import annotations

import json
import os
import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: Schema version of the emitted JSON; bump on incompatible changes.
SCHEMA_VERSION = 1


class _Timer:
    """Result object yielded by :func:`timed`."""

    def __init__(self) -> None:
        self.seconds = 0.0


@contextmanager
def timed() -> Iterator[_Timer]:
    """Context manager measuring wall-clock seconds of its body."""
    timer = _Timer()
    start = time.perf_counter()
    try:
        yield timer
    finally:
        timer.seconds = time.perf_counter() - start


class StageTimes:
    """Per-stage wall-clock breakdown for one bench case.

    Use :meth:`time` around each stage; attach the finished mapping as
    ``BenchCase(stages=...)`` so the JSON answers *where* the wall-clock
    went (crawl vs. detect vs. analyze), not just how long it was::

        stages = StageTimes()
        with stages.time("crawl"):
            dataset = crawl()
        with stages.time("analyze"):
            study.analyze(dataset)
        report.add(BenchCase(..., stages=stages.as_dict()))
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}

    @contextmanager
    def time(self, label: str) -> Iterator[None]:
        """Measure the body's wall-clock under ``label`` (accumulating)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[label] = self._seconds.get(label, 0.0) + elapsed

    def as_dict(self) -> Dict[str, float]:
        """{stage: seconds} in recording order, rounded for the JSON."""
        return {label: round(seconds, 4)
                for label, seconds in self._seconds.items()}


@dataclass
class BenchCase:
    """One measured configuration.

    ``items`` is the unit of throughput (for crawl benches: sites);
    ``params`` carries the configuration knobs (worker count, shard
    count, population size, ...) so the JSON is self-describing;
    ``stages`` optionally breaks the wall-clock down per pipeline stage
    (see :class:`StageTimes`).
    """

    label: str
    wall_seconds: float
    items: int = 0
    params: Dict[str, object] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)
    stages: Dict[str, float] = field(default_factory=dict)

    @property
    def items_per_second(self) -> float:
        """Throughput (0.0 when nothing was counted or time was ~0)."""
        if self.items <= 0 or self.wall_seconds <= 0.0:
            return 0.0
        return self.items / self.wall_seconds

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "label": self.label,
            "wall_seconds": round(self.wall_seconds, 4),
            "items": self.items,
            "items_per_second": round(self.items_per_second, 2),
        }
        if self.params:
            data["params"] = dict(self.params)
        if self.stages:
            data["stages"] = dict(self.stages)
        if self.extra:
            data.update(self.extra)
        return data


@dataclass
class BenchReport:
    """An accumulating benchmark report with a JSON serialization."""

    name: str
    cases: List[BenchCase] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, case: BenchCase) -> BenchCase:
        """Record one case (returned unchanged, for chaining)."""
        self.cases.append(case)
        return case

    def note(self, text: str) -> None:
        """Attach a free-form annotation to the report."""
        self.notes.append(text)

    def baseline(self, label: str) -> Optional[BenchCase]:
        """The first case with ``label``, if recorded."""
        for case in self.cases:
            if case.label == label:
                return case
        return None

    def speedup_over(self, baseline_label: str,
                     case: BenchCase) -> Optional[float]:
        """Wall-clock speedup of ``case`` relative to a named baseline.

        Returns ``None`` when the baseline is missing or unmeasurable.
        """
        base = self.baseline(baseline_label)
        if base is None or case.wall_seconds <= 0.0:
            return None
        return base.wall_seconds / case.wall_seconds

    def environment(self) -> Dict[str, object]:
        """Host facts that bound what the numbers can mean."""
        return {
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
            "platform": platform.platform(),
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "environment": self.environment(),
            "cases": [case.as_dict() for case in self.cases],
            "notes": list(self.notes),
        }

    def write(self, path: str) -> str:
        """Serialize the report to ``path`` (pretty JSON); returns path."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
        return path
