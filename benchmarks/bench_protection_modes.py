"""Extension study: protection mechanisms compared head-to-head.

Beyond the paper's §7 (browsers and post-hoc blocklist matching), this
bench deploys the protections *inside* the browser and measures residual
leakage over the 130 leaking senders:

* vanilla browser (baseline),
* an EasyList+EasyPrivacy content-blocking extension (uBlock-style),
* Brave Shields,
* the publisher-side PII firewall (repro.mitigation) — the "proactive
  termination" the paper's conclusion calls for.
"""

from repro.blocklist import AdblockExtension
from repro.browser import brave, vanilla_firefox
from repro.core import CandidateTokenSet, LeakAnalysis, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.mitigation import PiiFirewall


def test_bench_protection_modes(benchmark, study_spec, emit):
    population = study_spec.population
    sites = [population.sites[d] for d in study_spec.leaking_domains]
    tokens = CandidateTokenSet(DEFAULT_PERSONA)

    def detector():
        return LeakDetector(tokens, catalog=population.catalog,
                            resolver=population.resolver())

    def measure():
        rows = []

        def run(label, **crawler_kwargs):
            dataset = StudyCrawler(population, **crawler_kwargs).crawl(
                sites=sites)
            analysis = LeakAnalysis(detector().detect(dataset.log))
            broken = sum(1 for flow in dataset.flows.values()
                         if not flow.succeeded)
            rows.append((label, len(analysis.senders()),
                         len(analysis.receivers()), broken))

        run("vanilla")
        run("adblock extension",
            extension=AdblockExtension.with_default_lists())
        run("brave shields", profile=brave(population.catalog))
        # Origin-only firewall: blind to CNAME cloaking, like the
        # origin-based browser protections of §7.1.
        run("firewall (origin)", firewall=PiiFirewall(tokens))
        run("firewall (+cname)",
            firewall=PiiFirewall(tokens,
                                 resolver=population.resolver()))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Protection modes over the 130 leaking senders:",
             "  %-20s %8s %10s %14s" % ("mode", "senders", "receivers",
                                        "broken flows")]
    for label, senders, receivers, broken in rows:
        lines.append("  %-20s %8d %10d %14d"
                     % (label, senders, receivers, broken))
    lines.append("")
    lines.append("the firewall removes every detectable leak without "
                 "blocking a single request or breaking any flow; the "
                 "blockers trade residual leakage against breakage.")
    emit("protection_modes", "\n".join(lines))

    by_label = {row[0]: row for row in rows}
    assert by_label["vanilla"][1] == 130
    # Origin-only scrubbing leaves exactly the cloaked cookie channel.
    assert by_label["firewall (origin)"][1] == 5
    assert by_label["firewall (+cname)"][1] == 0
    assert by_label["firewall (+cname)"][3] == 0     # nothing breaks
    assert by_label["brave shields"][3] == 1         # nykaa.com CAPTCHA
    assert 0 < by_label["adblock extension"][1] < 130
