"""Ablation: salted identifiers vs the two detection strategies.

A tracker that hashes ``salt || email`` defeats candidate-token matching:
no precomputed set contains its tokens.  This bench builds a universe
where half the trackers salt, and compares the paper's exact detector
against the parameter-name heuristic fallback (repro.core.heuristics) —
quantifying the methodology's blind spot and how much of it the heuristic
recovers.
"""

from repro.core import (
    CandidateTokenSet,
    HeuristicDetector,
    LeakAnalysis,
    LeakDetector,
)
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.websim import (
    LeakBehavior,
    TrackerEmbed,
    Website,
    build_default_catalog,
)
from repro.websim.population import Population

_PLAIN_TRACKERS = ("facebook.com", "criteo.com", "pinterest.com")
_SALTING_TRACKERS = ("snapchat.com", "dotomi.com", "krxd.net")


def _universe():
    catalog = build_default_catalog()
    sites = {}
    for index in range(12):
        domain = "salted-shop%02d.example" % index
        embeds = []
        plain = _PLAIN_TRACKERS[index % len(_PLAIN_TRACKERS)]
        embeds.append(TrackerEmbed(
            catalog.get(plain), LeakBehavior(("uri",), (("sha256",),))))
        salted = _SALTING_TRACKERS[index % len(_SALTING_TRACKERS)]
        embeds.append(TrackerEmbed(
            catalog.get(salted),
            LeakBehavior(("uri",), (("sha256",),),
                         param="email_hash",
                         salt="pepper-%s::" % salted)))
        sites[domain] = Website(domain=domain, embeds=embeds)
    return Population(sites=sites, catalog=catalog)


def test_bench_salting_ablation(benchmark, emit):
    population = _universe()
    tokens = CandidateTokenSet(DEFAULT_PERSONA)

    def measure():
        dataset = StudyCrawler(population).crawl()
        exact = LeakDetector(tokens, catalog=population.catalog,
                             resolver=population.resolver())
        exact_events = exact.detect(dataset.log)
        known = {event.token for event in exact_events}
        heuristic = HeuristicDetector(known_tokens=known)
        suspected = heuristic.detect(dataset.log)
        return exact_events, suspected

    exact_events, suspected = benchmark.pedantic(measure, rounds=1,
                                                 iterations=1)
    exact_receivers = {e.receiver for e in exact_events}
    suspected_receivers = {f.receiver for f in suspected}

    lines = ["Ablation: salted identifiers "
             "(12 sites, 3 plain + 3 salting trackers)",
             "  exact token matching finds:  %s"
             % ", ".join(sorted(exact_receivers)),
             "  heuristic fallback suspects: %s"
             % ", ".join(sorted(suspected_receivers)),
             "",
             "salting makes the identifier invisible to candidate-set "
             "matching; parameter-name heuristics recover the *existence* "
             "of the leak (lower confidence, no PII-type attribution)."]
    emit("ablation_salting", "\n".join(lines))

    # Exact detection sees only the unsalted trackers.
    assert exact_receivers == set(_PLAIN_TRACKERS)
    # The heuristic flags the salting ones (param 'email_hash').
    assert set(_SALTING_TRACKERS) <= suspected_receivers
    # And never re-reports what exact matching already confirmed.
    assert not (suspected_receivers & exact_receivers)
