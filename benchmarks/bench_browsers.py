"""§7.1 browser countermeasures: re-crawl the 130 senders per browser.

Regenerates the finding that only Brave reduces PII leakage (93.1% fewer
senders, 92% fewer receivers, 8 missed services, one CAPTCHA-broken
sign-up) while Chrome/Opera/Safari/Firefox change nothing.
"""

from repro.datasets import paper
from repro.protection import BrowserCountermeasureEvaluator


def test_bench_browser_countermeasures(benchmark, study_spec, emit):
    evaluator = BrowserCountermeasureEvaluator(
        study_spec.population, study_spec.leaking_domains)
    study = benchmark.pedantic(evaluator.run, rounds=1, iterations=1)

    lines = ["Browser countermeasures (vs Firefox baseline %d senders / "
             "%d receivers):" % (study.baseline.senders,
                                 study.baseline.receivers)]
    for name, result in study.results.items():
        sender_pct, receiver_pct = study.reductions()[name]
        lines.append(
            "  %-12s senders %3d (-%5.1f%%)  receivers %3d (-%5.1f%%)"
            "  failed signups: %s"
            % (name, result.senders, sender_pct, result.receivers,
               receiver_pct, ", ".join(result.failed_signups) or "-"))
    lines.append("")
    lines.append("Brave-missed receivers: %s"
                 % ", ".join(study.remaining_receivers["brave"]))
    lines.append("paper: Brave -93.1%% senders / -92.0%% receivers; "
                 "misses %s" % ", ".join(paper.BRAVE_MISSED))
    emit("browsers", "\n".join(lines))

    assert set(study.remaining_receivers["brave"]) == set(paper.BRAVE_MISSED)
    for name in ("chrome", "opera", "safari", "firefox-etp"):
        assert study.results[name].senders == study.baseline.senders
