"""§3.2 methodology validation: manual vs. automated crawling.

The paper collects data manually because 43 sites deploy bot detection and
68 require e-mail confirmation — "these sites can not be crawled
automatically".  This bench runs the same population with an OpenWPM-style
automated crawler (detectable client, no mailbox access) and quantifies
what an automated study would have lost.
"""

from repro.core import CandidateTokenSet, LeakAnalysis, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import (
    STATUS_BOT_BLOCKED,
    STATUS_CONFIRMATION_FAILED,
    StudyCrawler,
)
from repro.datasets import paper


def test_bench_manual_vs_automated(benchmark, study_spec, emit):
    population = study_spec.population
    tokens = CandidateTokenSet(DEFAULT_PERSONA)

    def measure():
        rows = []
        for automated in (False, True):
            dataset = StudyCrawler(population,
                                   automated=automated).crawl()
            detector = LeakDetector(tokens, catalog=population.catalog,
                                    resolver=population.resolver())
            analysis = LeakAnalysis(detector.detect(dataset.log))
            counts = dataset.status_counts()
            rows.append((automated, counts, len(analysis.senders()),
                         len(analysis.receivers())))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Manual operator vs automated (OpenWPM-style) crawler:"]
    for automated, counts, senders, receivers in rows:
        label = "automated" if automated else "manual"
        lines.append(
            "  %-9s success %3d  bot-blocked %3d  confirm-failed %3d  "
            "-> %3d senders, %3d receivers detected"
            % (label, counts.get("success", 0),
               counts.get(STATUS_BOT_BLOCKED, 0),
               counts.get(STATUS_CONFIRMATION_FAILED, 0),
               senders, receivers))
    manual, automated = rows
    lost = manual[2] - automated[2]
    lines.append("")
    lines.append("automation loses %d successful flows (%d bot-blocked + "
                 "%d unconfirmable) and misses %d leaking senders — the "
                 "paper's argument for manual collection"
                 % (manual[1]["success"] - automated[1]["success"],
                    automated[1].get(STATUS_BOT_BLOCKED, 0),
                    automated[1].get(STATUS_CONFIRMATION_FAILED, 0),
                    lost))
    emit("manual_vs_automated", "\n".join(lines))

    assert manual[1]["success"] == paper.SUCCESSFUL_FLOWS
    assert automated[1][STATUS_BOT_BLOCKED] == paper.BOT_DETECTION_SITES
    assert automated[1][STATUS_CONFIRMATION_FAILED] == \
        paper.EMAIL_CONFIRMATION_SITES
    assert automated[2] < manual[2]
