"""Micro-benchmarks for the performance-critical primitives.

Two modes:

* under pytest (``pytest benchmarks/bench_micro.py``) the
  pytest-benchmark cases below time individual primitives;
* standalone (``python benchmarks/bench_micro.py`` or via
  ``harness.py --update-baseline --bench micro``) :func:`run` times the
  two hot-path primitives the compiled-assets work optimised —
  blocklist matching (interpreted vs. Aho–Corasick-compiled) and
  encoding-chain enumeration — and writes a harness
  :class:`~harness.BenchReport` so the registry can gate them against a
  committed ``BENCH_micro.json`` baseline.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro import hashes
from repro.blocklist import RequestContext, RuleSet, easyprivacy_text
from repro.core import AhoCorasick, CandidateTokenSet, TokenSetConfig
from repro.core.persona import DEFAULT_PERSONA

_EMAIL = DEFAULT_PERSONA.email.encode()


@pytest.mark.parametrize("name", ["md5", "sha256", "md4", "ripemd160",
                                  "whirlpool", "snefru128", "md2"])
def test_bench_hash_throughput(benchmark, name):
    transform = hashes.get(name)
    benchmark(transform.apply, _EMAIL)


def test_bench_token_set_build(benchmark):
    benchmark.pedantic(
        lambda: CandidateTokenSet(DEFAULT_PERSONA,
                                  TokenSetConfig(max_depth=2)),
        rounds=2, iterations=1)


def test_bench_automaton_build(benchmark):
    patterns = [hashes.apply_chain("user%d@mail.example" % i, ["sha256"])
                for i in range(500)]

    def build():
        automaton = AhoCorasick()
        for pattern in patterns:
            automaton.add(pattern, None)
        automaton.build()
        return automaton

    benchmark(build)


_HIT_CONTEXT = RequestContext(
    url="https://www.facebook.com/tr?ev=identify&udff%5Bem%5D=abcd",
    resource_type="image", page_domain="shop.com",
    is_third_party=True)
_MISS_CONTEXT = RequestContext(
    url="https://api.custora.com/v1/track?uid=abcd",
    resource_type="image", page_domain="shop.com",
    is_third_party=True)


def test_bench_blocklist_match(benchmark):
    rules = RuleSet.from_text(easyprivacy_text())
    result = benchmark(rules.match, _HIT_CONTEXT)
    assert result.blocked


def test_bench_blocklist_miss(benchmark):
    rules = RuleSet.from_text(easyprivacy_text())
    result = benchmark(rules.match, _MISS_CONTEXT)
    assert not result.blocked


def test_bench_blocklist_match_compiled(benchmark):
    rules = RuleSet.from_text(easyprivacy_text()).compile()
    result = benchmark(rules.match, _HIT_CONTEXT)
    assert result.blocked


def test_bench_blocklist_miss_compiled(benchmark):
    rules = RuleSet.from_text(easyprivacy_text()).compile()
    result = benchmark(rules.match, _MISS_CONTEXT)
    assert not result.blocked


def test_bench_chain_enumeration_cold(benchmark):
    """Full encoding-chain enumeration with a cold apply_chain memo."""
    def build():
        hashes.clear_chain_cache()
        return CandidateTokenSet(DEFAULT_PERSONA, recorder=None)

    tokens = benchmark.pedantic(build, rounds=2, iterations=1)
    assert tokens.token_count > 1000


def test_bench_wire_serialization(benchmark):
    from repro.netsim import Headers, HttpRequest, Url
    from repro.netsim.wire import parse_request, serialize_request
    request = HttpRequest(
        method="POST",
        url=Url.parse("https://www.facebook.com/tr?ev=identify&uid=abc"),
        headers=Headers([("Referer", "https://www.shop.example/"),
                         ("Content-Type",
                          "application/x-www-form-urlencoded")]),
        body=b"udff%5Bem%5D=" + b"a" * 64)
    raw = serialize_request(request)
    benchmark(parse_request, raw)


def test_bench_caching_resolver(benchmark, study_spec):
    from repro.dnssim import CachingResolver
    clock = [0.0]
    resolver = CachingResolver(study_spec.population.resolver(),
                               lambda: clock[0])
    resolver.resolve("www.facebook.com")  # warm the cache

    def lookup():
        return resolver.resolve("www.facebook.com")

    benchmark(lookup)
    assert resolver.stats.hit_ratio > 0.9


# ---------------------------------------------------------------------------
# Standalone harness mode: the two compiled-assets hot-path primitives,
# recorded into the baseline registry as bench "micro".
# ---------------------------------------------------------------------------

OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out",
                        "BENCH_micro.json")

#: Passes over the URL workload per matcher measurement — sized so each
#: case clears the registry's 0.05s noise floor on CI hardware.
MATCH_PASSES = 2000

#: Cold token-set builds per enumeration measurement.
ENUMERATION_BUILDS = 3


def _match_workload():
    """A deterministic hit/miss mix of request contexts.

    Derived from the study's real endpoint shapes (tracking pixels,
    attribution beacons) plus benign lookalikes, expanded with varying
    paths so the matcher sees distinct URLs rather than one memoised
    string.
    """
    shapes = [
        ("https://www.facebook.com/tr?ev=identify&udff%%5Bem%%5D=v%d",
         "image"),
        ("https://bat.bing.com/action/0?ti=4%d&evt=pageLoad", "script"),
        ("https://px.ads.linkedin.com/collect?pid=1%d&fmt=gif", "image"),
        ("https://api.custora.com/v1/track?uid=u%d", "image"),
        ("https://cdn.shopcorp.example/assets/app-%d.js", "script"),
        ("https://static.shop.example/img/product-%d.jpg", "image"),
    ]
    contexts = []
    for i in range(24):
        template, resource = shapes[i % len(shapes)]
        contexts.append(RequestContext(
            url=template % i, resource_type=resource,
            page_domain="shop.example", is_third_party=True))
    return contexts


def run(quick=True, out_path=OUT_PATH):
    """Time the hot-path primitives; returns a harness BenchReport.

    ``quick`` is accepted for harness-runner symmetry; the micro sweep
    is already CI-sized, so it is ignored.
    """
    from harness import BenchCase, BenchReport, timed

    del quick
    report = BenchReport(name="micro")
    rules = RuleSet.from_text(easyprivacy_text())
    compiled = rules.compile()
    contexts = _match_workload()
    # The compiled engine must agree with the interpreted one before
    # its timing is worth recording.
    for context in contexts:
        assert compiled.match(context) == rules.match(context), (
            "compiled/interpreted matcher disagree on %s" % context.url)

    wall = {}
    for label, engine in (("blocklist-match/interpreted", rules),
                          ("blocklist-match/compiled", compiled)):
        with timed() as timer:
            for _ in range(MATCH_PASSES):
                for context in contexts:
                    engine.match(context)
        wall[label] = timer.seconds
        case = report.add(BenchCase(
            label=label, wall_seconds=timer.seconds,
            items=MATCH_PASSES * len(contexts),
            params={"passes": MATCH_PASSES, "urls": len(contexts),
                    "filters": len(rules)}))
        print("%-32s %7.3fs  %8.0f matches/s"
              % (case.label, case.wall_seconds, case.items_per_second))
    if wall["blocklist-match/compiled"] > 0:
        report.note("interpreted/compiled wall ratio: %.2fx (>1 means the "
                    "compiled engine is faster on this workload)"
                    % (wall["blocklist-match/interpreted"]
                       / wall["blocklist-match/compiled"]))

    token_count = 0
    with timed() as timer:
        for _ in range(ENUMERATION_BUILDS):
            hashes.clear_chain_cache()
            tokens = CandidateTokenSet(DEFAULT_PERSONA, recorder=None)
            token_count = tokens.token_count
    case = report.add(BenchCase(
        label="chain-enumeration/cold", wall_seconds=timer.seconds,
        items=ENUMERATION_BUILDS * token_count,
        params={"builds": ENUMERATION_BUILDS, "tokens": token_count}))
    print("%-32s %7.3fs  %8.0f tokens/s"
          % (case.label, case.wall_seconds, case.items_per_second))

    path = report.write(out_path)
    print("wrote %s" % path)
    return report


if __name__ == "__main__":
    sys.exit(0 if run().cases else 1)
