"""Micro-benchmarks for the performance-critical primitives."""

import pytest

from repro import hashes
from repro.blocklist import RequestContext, RuleSet, easyprivacy_text
from repro.core import AhoCorasick, CandidateTokenSet, TokenSetConfig
from repro.core.persona import DEFAULT_PERSONA

_EMAIL = DEFAULT_PERSONA.email.encode()


@pytest.mark.parametrize("name", ["md5", "sha256", "md4", "ripemd160",
                                  "whirlpool", "snefru128", "md2"])
def test_bench_hash_throughput(benchmark, name):
    transform = hashes.get(name)
    benchmark(transform.apply, _EMAIL)


def test_bench_token_set_build(benchmark):
    benchmark.pedantic(
        lambda: CandidateTokenSet(DEFAULT_PERSONA,
                                  TokenSetConfig(max_depth=2)),
        rounds=2, iterations=1)


def test_bench_automaton_build(benchmark):
    patterns = [hashes.apply_chain("user%d@mail.example" % i, ["sha256"])
                for i in range(500)]

    def build():
        automaton = AhoCorasick()
        for pattern in patterns:
            automaton.add(pattern, None)
        automaton.build()
        return automaton

    benchmark(build)


def test_bench_blocklist_match(benchmark):
    rules = RuleSet.from_text(easyprivacy_text())
    context = RequestContext(
        url="https://www.facebook.com/tr?ev=identify&udff%5Bem%5D=abcd",
        resource_type="image", page_domain="shop.com",
        is_third_party=True)
    result = benchmark(rules.match, context)
    assert result.blocked


def test_bench_blocklist_miss(benchmark):
    rules = RuleSet.from_text(easyprivacy_text())
    context = RequestContext(
        url="https://api.custora.com/v1/track?uid=abcd",
        resource_type="image", page_domain="shop.com",
        is_third_party=True)
    result = benchmark(rules.match, context)
    assert not result.blocked


def test_bench_wire_serialization(benchmark):
    from repro.netsim import Headers, HttpRequest, Url
    from repro.netsim.wire import parse_request, serialize_request
    request = HttpRequest(
        method="POST",
        url=Url.parse("https://www.facebook.com/tr?ev=identify&uid=abc"),
        headers=Headers([("Referer", "https://www.shop.example/"),
                         ("Content-Type",
                          "application/x-www-form-urlencoded")]),
        body=b"udff%5Bem%5D=" + b"a" * 64)
    raw = serialize_request(request)
    benchmark(parse_request, raw)


def test_bench_caching_resolver(benchmark, study_spec):
    from repro.dnssim import CachingResolver
    clock = [0.0]
    resolver = CachingResolver(study_spec.population.resolver(),
                               lambda: clock[0])
    resolver.resolve("www.facebook.com")  # warm the cache

    def lookup():
        return resolver.resolve("www.facebook.com")

    benchmark(lookup)
    assert resolver.stats.hit_ratio > 0.9
