"""Ablation: candidate-set lookup strategy.

Compares the Aho-Corasick automaton (one pass over the text for all
tokens) against the naive per-token substring scan a straightforward
implementation would use.  Both find the same leaks; the automaton's
advantage grows with the candidate-set size.
"""

import pytest


def _scan_texts(crawl, limit=400):
    texts = []
    for entry in crawl.log:
        if entry.was_blocked:
            continue
        texts.append(str(entry.request.url))
        if len(texts) >= limit:
            break
    return texts


@pytest.fixture(scope="module")
def scan_texts(crawl):
    return _scan_texts(crawl)


def test_bench_lookup_aho_corasick(benchmark, tokens, scan_texts):
    def automaton_scan():
        return sum(len(tokens.scan(text)) for text in scan_texts)

    hits = benchmark(automaton_scan)
    assert hits > 0


def test_bench_lookup_naive_substring(benchmark, tokens, scan_texts):
    all_tokens = tokens.tokens()

    def naive_scan():
        hits = 0
        for text in scan_texts:
            for token in all_tokens:
                if token in text:
                    hits += 1
        return hits

    hits = benchmark.pedantic(naive_scan, rounds=1, iterations=1)
    assert hits > 0
    # The equivalence of the two strategies is asserted in
    # tests/test_lookup_agreement.py.
