"""Figure 3: the persistent-tracking HTTP exchange.

Shows one provider's trackid parameter carrying the hashed email during
the sign-in flow and again — from storage — on an ordinary product
subpage, across two different sender sites (the cross-site join).
"""

from repro.core import CandidateTokenSet, LeakDetector
from repro.core.persona import DEFAULT_PERSONA
from repro.crawler import StudyCrawler
from repro.netsim import STAGE_SUBPAGE
from repro.reporting import render_leak_trace
from repro.websim import (
    LeakBehavior,
    TrackerEmbed,
    Website,
    build_default_catalog,
)
from repro.websim.population import Population


def test_bench_persistent_tracking_trace(benchmark, emit):
    catalog = build_default_catalog()
    behavior = LeakBehavior(("uri",), (("sha256",),))
    sites = {}
    for domain in ("shop-a.example", "shop-b.example"):
        sites[domain] = Website(
            domain=domain,
            embeds=[TrackerEmbed(catalog.get("criteo.com"), behavior)])
    population = Population(sites=sites, catalog=catalog)

    def run():
        dataset = StudyCrawler(population).crawl()
        detector = LeakDetector(CandidateTokenSet(DEFAULT_PERSONA),
                                catalog=population.catalog,
                                resolver=population.resolver())
        return detector.detect(dataset.log)

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    subpage = [e for e in events if e.stage == STAGE_SUBPAGE]
    assert subpage, "no subpage re-emission observed"
    tokens = {e.token for e in events if e.parameter == "p0"}
    assert len(tokens) == 1, "the identifier must be stable across sites"
    senders = {e.sender for e in events}
    assert senders == {"shop-a.example", "shop-b.example"}
    emit("figure3", render_leak_trace(
        events, "Figure 3 — persistent tracking via trackid p0 "
                "(criteo.com), cross-site and on subpages:", limit=16))
