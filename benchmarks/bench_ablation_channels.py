"""Ablation: detection channel coverage.

Prior work ([20, 24, 30, 32] in the paper) inspected URL strings only.
This ablation re-runs detection with progressively wider coverage and
shows what each channel adds — the paper's §4.2.1 point that the payload
body alone hides 43 senders and 17 receivers from URL-only methodologies.
"""

from repro.core import LeakAnalysis, LeakDetector
from repro.core.leakmodel import (
    LOCATION_BODY,
    LOCATION_COOKIE,
    LOCATION_PATH,
    LOCATION_QUERY,
    LOCATION_REFERER,
)

_CONFIGS = (
    ("url-only (prior work)", (LOCATION_QUERY, LOCATION_PATH)),
    ("+referer", (LOCATION_QUERY, LOCATION_PATH, LOCATION_REFERER)),
    ("+cookie", (LOCATION_QUERY, LOCATION_PATH, LOCATION_REFERER,
                 LOCATION_COOKIE)),
    ("+payload (this paper)", (LOCATION_QUERY, LOCATION_PATH,
                               LOCATION_REFERER, LOCATION_COOKIE,
                               LOCATION_BODY)),
)


def test_bench_channel_ablation(benchmark, study_spec, crawl, tokens, emit):
    def measure():
        rows = []
        for label, locations in _CONFIGS:
            detector = LeakDetector(
                tokens, catalog=study_spec.catalog,
                resolver=study_spec.population.resolver(),
                locations=locations)
            analysis = LeakAnalysis(detector.detect(crawl.log))
            rows.append((label, len(analysis.senders()),
                         len(analysis.receivers())))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Ablation: channel coverage -> detected senders/receivers"]
    for label, senders, receivers in rows:
        lines.append("  %-24s %3d senders  %3d receivers"
                     % (label, senders, receivers))
    full = rows[-1]
    url_only = rows[0]
    lines.append("")
    lines.append(
        "inspecting payload bodies reaches %d senders and %d receivers "
        "invisible to URL-and-cookie inspection; the 43 payload-channel "
        "senders of Table 1a are only fully classified with it"
        % (full[1] - rows[2][1], full[2] - rows[2][2]))
    emit("ablation_channels", "\n".join(lines))

    assert url_only[1] < full[1]
    assert full[1] == 130
