"""§5.1 cross-browser / cross-device tracking demonstration.

Crawls the 130 leaking senders with two independent browser states (fresh
cookie jars — the "two devices"), then joins the two leak datasets on the
receiver side: every persistent provider links the profiles through the
shared PII-derived identifier, cookie-free.
"""

from repro.browser import chrome, vanilla_firefox
from repro.core import CandidateTokenSet, LeakDetector
from repro.crawler import StudyCrawler
from repro.tracking import linkable_receivers, match_profiles


def test_bench_cross_device_matching(benchmark, study_spec, tokens, emit):
    population = study_spec.population
    sites = [population.sites[d] for d in study_spec.leaking_domains[:40]]

    def crawl_profile(profile):
        dataset = StudyCrawler(population, profile=profile).crawl(
            sites=sites)
        detector = LeakDetector(tokens, catalog=population.catalog,
                                resolver=population.resolver())
        return detector.detect(dataset.log)

    events_device_a = crawl_profile(vanilla_firefox())
    events_device_b = crawl_profile(chrome())

    matches = benchmark(lambda: match_profiles(events_device_a,
                                               events_device_b))
    receivers = linkable_receivers(matches)
    top = matches[0]
    emit("crossdevice", "\n".join([
        "Cross-device identity joins over 40 senders, two browsers:",
        "  linkable receivers: %d" % len(receivers),
        "  best join: %s links %d sites via %r"
        % (top.receiver, top.linked_sites, top.parameter_a),
        "  receivers: %s" % ", ".join(receivers[:12]),
    ]))
    assert "facebook.com" in receivers
    assert top.linked_sites >= 2
