"""Ablation: CNAME cloaking awareness.

Without resolving CNAME chains, a detector treats the cloaked Adobe
collection subdomains (metrics.<site>) as first-party and misses the five
cookie-channel senders entirely — the paper's §4.1 motivation for adding
the DNS check that prior work lacked.
"""

from repro.core import LeakAnalysis, LeakDetector


def test_bench_cname_ablation(benchmark, study_spec, crawl, tokens, emit):
    def measure():
        with_dns = LeakDetector(tokens, catalog=study_spec.catalog,
                                resolver=study_spec.population.resolver())
        without_dns = LeakDetector(tokens, catalog=study_spec.catalog,
                                   resolver=None)
        return (LeakAnalysis(with_dns.detect(crawl.log)),
                LeakAnalysis(without_dns.detect(crawl.log)))

    with_dns, without_dns = benchmark.pedantic(measure, rounds=1,
                                               iterations=1)

    def cookie_senders(analysis):
        return {rel.sender for rel in analysis.relationships()
                if "cookie" in rel.channels}

    cloaked_receivers = {rel.receiver for rel in with_dns.relationships()
                         if rel.cloaked}
    lines = [
        "Ablation: CNAME cloaking detection",
        "  with DNS check:    %d senders, %d receivers, "
        "cookie-channel senders: %d"
        % (len(with_dns.senders()), len(with_dns.receivers()),
           len(cookie_senders(with_dns))),
        "  without DNS check: %d senders, %d receivers, "
        "cookie-channel senders: %d"
        % (len(without_dns.senders()), len(without_dns.receivers()),
           len(cookie_senders(without_dns))),
        "  cloaked receivers recovered by the DNS check: %s"
        % ", ".join(sorted(cloaked_receivers)),
    ]
    emit("ablation_cname", "\n".join(lines))

    assert len(cookie_senders(with_dns)) == 5
    assert len(cookie_senders(without_dns)) == 0
    assert "omtrdc.net" in cloaked_receivers
